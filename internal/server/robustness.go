// Robustness layer: admission control, per-request deadlines and panic
// quarantine for the heavy endpoints, plus session survival — spool-backed
// LRU eviction and shutdown drain. See doc.go ("Fault model and
// degradation ladder") for the contracts this file implements.
package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/repair"
)

// Robustness defaults; fields on Server override them.
const (
	// defaultMaxInFlight bounds concurrently executing explain/repair
	// requests server-wide. Each one fans out across its session engine's
	// worker pool, so admission — not goroutine pressure — is what keeps a
	// saturated server answering its cheap endpoints.
	defaultMaxInFlight = 4
	// defaultMaxBodyBytes bounds request bodies (CSV uploads included): a
	// runaway body ties up memory before any session code runs.
	defaultMaxBodyBytes = 10 << 20
	// retryAfterSeconds is the backoff hint sent with 429 responses.
	retryAfterSeconds = 1
	// drainTimeout bounds the shutdown drain: in-flight requests get this
	// long to finish before their contexts are cancelled.
	drainTimeout = 10 * time.Second
)

// errQuarantined marks a session disabled by a panicked request.
type quarantineError struct {
	id    string
	cause string
}

func (q *quarantineError) Error() string {
	return fmt.Sprintf("session %s quarantined after panic: %s", q.id, q.cause)
}

// maxInFlight resolves the admission bound.
func (s *Server) maxInFlight() int {
	if s.MaxInFlight > 0 {
		return s.MaxInFlight
	}
	return defaultMaxInFlight
}

// maxBodyBytes resolves the body limit.
func (s *Server) maxBodyBytes() int64 {
	if s.MaxBodyBytes > 0 {
		return s.MaxBodyBytes
	}
	return defaultMaxBodyBytes
}

// admit claims one in-flight-explain slot without blocking. It returns a
// release function, or ok=false when the server is saturated — the caller
// answers 429 with a Retry-After hint, the load-shedding contract: a
// saturated server degrades by rejecting crisply, never by queueing
// unboundedly or slowing every request.
func (s *Server) admit() (release func(), ok bool) {
	s.mu.Lock()
	if s.inflight == nil {
		s.inflight = make(chan struct{}, s.maxInFlight())
	}
	ch := s.inflight
	s.mu.Unlock()
	select {
	case ch <- struct{}{}:
		return func() { <-ch }, true
	default:
		return nil, false
	}
}

// reject429 answers a saturated heavy endpoint.
func reject429(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeError(w, http.StatusTooManyRequests, fmt.Errorf("server saturated; retry after %ds", retryAfterSeconds))
}

// reqContext derives the context a heavy request computes under: the
// client's (cancelled on disconnect), bounded by the per-request deadline
// when one is configured. The returned cancel must run when the handler
// exits so an abandoned computation releases its workers immediately —
// the 408 path's "cancel the underlying computation" contract.
func (s *Server) reqContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// checkQuarantine answers 409 with diagnostics when the session was
// disabled by an earlier panic. Call with entry.mu held.
func checkQuarantine(w http.ResponseWriter, entry *session) bool {
	if entry.quarantined != nil {
		writeError(w, http.StatusConflict, entry.quarantined)
		return true
	}
	return false
}

// guard returns a deferred recovery hook for a session-scoped handler: a
// panic escaping the handler (a black-box bug, or an injected fault) is
// contained — the session is quarantined with diagnostics and the request
// answers 409 — instead of killing the process and every other session
// with it. Register it *after* the entry.mu unlock defer so it runs while
// the lock is still held.
func (s *Server) guard(w http.ResponseWriter, id string, entry *session) func() {
	return func() {
		r := recover()
		if r == nil {
			return
		}
		cause := fmt.Sprintf("%v", r)
		entry.quarantined = &quarantineError{id: id, cause: cause}
		// The stack goes to stderr for the operator; the response carries
		// the cause only.
		fmt.Fprintf(os.Stderr, "server: panic in session %s: %v\n%s", id, r, debug.Stack())
		writeError(w, http.StatusConflict, entry.quarantined)
	}
}

// recoverAll is the outermost safety net: a panic outside any session
// scope (routing, decoding) answers 500 instead of crashing the server.
func recoverAll(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				fmt.Fprintf(os.Stderr, "server: panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack())
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limitBody installs the request-body cap on every request.
func (s *Server) limitBody(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes())
		}
		next.ServeHTTP(w, r)
	})
}

// --- Session survival: spool, LRU eviction, drain -----------------------

// touch stamps the entry's recency and enforces the live-session budget.
// Call without s.mu held.
func (s *Server) touch(entry *session) {
	s.mu.Lock()
	s.clock++
	entry.lastTouch = s.clock
	s.mu.Unlock()
	s.enforceBudget()
}

// liveBudget resolves the LRU bound; 0 disables eviction.
func (s *Server) liveBudget() int {
	if s.SpoolDir == "" {
		return 0 // nowhere to evict to
	}
	return s.MaxLiveSessions
}

// enforceBudget evicts least-recently-used live sessions over the budget.
// Entries whose mutex is held (a request in flight) are skipped — they are
// by definition not idle — as are quarantined entries (their diagnostics
// state has no snapshot form). Eviction snapshots to the spool first; a
// failed snapshot keeps the session live (over budget beats losing user
// state).
func (s *Server) enforceBudget() {
	budget := s.liveBudget()
	if budget <= 0 {
		return
	}
	for {
		s.mu.Lock()
		// Scan in sorted id order so lastTouch ties evict the same victim
		// every run, not whichever id the map yields first.
		ids := make([]string, 0, len(s.sessions))
		for id := range s.sessions {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var victim *session
		var victimID string
		live := 0
		for _, id := range ids {
			entry := s.sessions[id]
			if entry.spooled {
				continue
			}
			live++
			if entry.quarantined != nil {
				continue
			}
			if victim == nil || entry.lastTouch < victim.lastTouch {
				victim, victimID = entry, id
			}
		}
		s.mu.Unlock()
		if live <= budget || victim == nil {
			return
		}
		if !victim.mu.TryLock() {
			// The LRU candidate is mid-request; it is not idle, so leave
			// the budget over-subscribed until the next touch.
			return
		}
		evicted := s.evictLocked(victimID, victim)
		victim.mu.Unlock()
		if !evicted {
			return
		}
	}
}

// evictLocked snapshots entry to the spool and drops its in-memory state.
// Caller holds entry.mu. Reports whether the eviction happened.
func (s *Server) evictLocked(id string, entry *session) bool {
	if entry.spooled || entry.sess == nil || entry.quarantined != nil {
		return false
	}
	if err := s.writeSpool(id, entry.sess); err != nil {
		fmt.Fprintf(os.Stderr, "server: spool %s: %v (keeping live)\n", id, err)
		return false
	}
	entry.sess = nil
	entry.spooled = true
	return true
}

// spoolPath is the snapshot file of one session id.
func (s *Server) spoolPath(id string) string {
	return filepath.Join(s.SpoolDir, id+".json")
}

// writeSpool atomically writes one session's snapshot (temp file + rename,
// so a crash mid-write never leaves a torn spool entry). A panic in the
// snapshot codec degrades to a write error: eviction and drain run on
// behalf of *other* requests, which must not fail because this session
// could not be spooled — the caller keeps it live instead.
func (s *Server) writeSpool(id string, sess *core.Session) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("snapshotting %s: panic: %v", id, rec)
		}
	}()
	return s.writeSpoolInner(id, sess)
}

func (s *Server) writeSpoolInner(id string, sess *core.Session) error {
	if s.SpoolDir == "" {
		return fmt.Errorf("no spool directory")
	}
	if err := os.MkdirAll(s.SpoolDir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.SpoolDir, id+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := sess.Snapshot().WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.spoolPath(id))
}

// ensureLive restores entry if it was evicted between the registry lookup
// and the handler acquiring its lock — another request's touch can evict
// any idle session in that window, so every handler re-checks under
// entry.mu before reading entry.sess. Caller holds entry.mu.
func (s *Server) ensureLive(id string, entry *session) error {
	if entry.sess != nil {
		return nil
	}
	if entry.spooled {
		return s.restoreLocked(id, entry)
	}
	return fmt.Errorf("session %s has no live state", id)
}

// restoreLocked loads a spooled session back into memory. Caller holds
// entry.mu. A panic in the codec degrades to an error: the entry stays
// spooled and the request fails cleanly instead of crashing the process.
func (s *Server) restoreLocked(id string, entry *session) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("restoring session %s: panic: %v", id, rec)
		}
	}()
	return s.restoreLockedInner(id, entry)
}

func (s *Server) restoreLockedInner(id string, entry *session) error {
	f, err := os.Open(s.spoolPath(id))
	if err != nil {
		return fmt.Errorf("restoring session %s: %w", id, err)
	}
	defer f.Close()
	sn, err := core.ReadSnapshot(f)
	if err != nil {
		return fmt.Errorf("restoring session %s: %w", id, err)
	}
	sess, err := core.RestoreSession(sn, func(name string) (repair.Algorithm, bool) {
		s.mu.Lock()
		alg, ok := s.algs[name]
		s.mu.Unlock()
		return alg, ok
	})
	if err != nil {
		return fmt.Errorf("restoring session %s: %w", id, err)
	}
	entry.sess = sess
	entry.spooled = false
	return nil
}

// LoadSpool registers every spooled session found in SpoolDir so requests
// can restore them on demand — the restart half of the SIGTERM drain
// contract. Session IDs resume past the highest spooled ID, so new
// sessions never collide with restored ones.
func (s *Server) LoadSpool() error {
	if s.SpoolDir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.SpoolDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if _, exists := s.sessions[id]; exists {
			continue
		}
		s.sessions[id] = &session{spooled: true}
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "s")); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	return nil
}

// Drain snapshots every live session to the spool — the SIGTERM half of
// session survival. Sessions mid-request are waited for via their mutex
// (ListenAndServe has already stopped accepting and cancelled their
// contexts, so the waits are short). Returns the first snapshot error but
// keeps draining the rest.
func (s *Server) Drain() error {
	if s.SpoolDir == "" {
		return nil
	}
	s.mu.Lock()
	// Drain in sorted id order: spool files land (and a first error is
	// attributed) identically across runs.
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	entries := make([]*session, len(ids))
	for i, id := range ids {
		entries[i] = s.sessions[id]
	}
	s.mu.Unlock()
	var firstErr error
	for i, entry := range entries {
		entry.mu.Lock()
		if !entry.spooled && entry.sess != nil && entry.quarantined == nil {
			if err := s.writeSpool(ids[i], entry.sess); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		entry.mu.Unlock()
	}
	return firstErr
}
