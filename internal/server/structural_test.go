package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// editURL is the edit endpoint of one session.
func editURL(ts *httptest.Server, id string) string {
	return ts.URL + "/api/session/" + id + "/edit"
}

// TestStructuralEditEndpoints drives the typed structural edits over the
// wire: insertRow, deleteRow (1-based, swap-delete), and batch brackets,
// each answered with the updated session and reflected in the history.
func TestStructuralEditEndpoints(t *testing.T) {
	ts := newTestServer(t)
	sess := createSession(t, ts)
	n := len(sess.Table.Rows)

	var after sessionJSON
	status, raw := post(t, editURL(ts, sess.ID), editRequest{
		InsertRow: []string{"Valencia", "Valencia", "Spain", "La Liga", "2019", "5"},
	}, &after)
	if status != http.StatusOK || len(after.Table.Rows) != n+1 {
		t.Fatalf("insert: %d %s", status, raw)
	}
	if after.Table.Rows[n][0] != "Valencia" {
		t.Fatalf("inserted row = %v", after.Table.Rows[n])
	}
	if got := after.History[len(after.History)-1]; !strings.HasPrefix(got, "insert row ") {
		t.Fatalf("insert history = %q", got)
	}

	// Delete tuple 2 (1-based): the last row swaps into its place.
	movedTeam := after.Table.Rows[n][0]
	del := 2
	status, raw = post(t, editURL(ts, sess.ID), editRequest{DeleteRow: &del}, &after)
	if status != http.StatusOK || len(after.Table.Rows) != n {
		t.Fatalf("delete: %d %s", status, raw)
	}
	if after.Table.Rows[1][0] != movedTeam {
		t.Fatalf("swap-delete put %q at index 1, want %q", after.Table.Rows[1][0], movedTeam)
	}
	if got := after.History[len(after.History)-1]; !strings.Contains(got, "moved to") {
		t.Fatalf("delete history = %q", got)
	}

	// A batch: set + insert + delete under one bracket; the set targets
	// the row the batch itself inserts.
	status, raw = post(t, editURL(ts, sess.ID), editRequest{Batch: []batchOpJSON{
		{Op: "set", Row: 1, Col: "City", Value: "Girona"},
		{Op: "insert", Values: []string{"Getafe", "Getafe", "Spain", "La Liga", "2019", "6"}},
		{Op: "set", Row: n + 1, Col: "Team", Value: "Getafe CF"},
		{Op: "delete", Row: 3},
	}}, &after)
	if status != http.StatusOK || len(after.Table.Rows) != n {
		t.Fatalf("batch: %d %s", status, raw)
	}
	if after.Table.Rows[0][1] != "Girona" {
		t.Fatalf("batch set missed: %v", after.Table.Rows[0])
	}
	if after.Table.Rows[2][0] != "Getafe CF" {
		t.Fatalf("batch insert+set+swap landed %q at index 2", after.Table.Rows[2][0])
	}
	hist := strings.Join(after.History, "\n")
	if !strings.Contains(hist, "batch begin (4 ops)") || !strings.Contains(hist, "batch end") {
		t.Fatalf("batch brackets missing from history:\n%s", hist)
	}

	// The live violation lists rode the structural edits; the endpoint
	// must answer without error and with 1-based rows in range.
	resp, err := http.Get(ts.URL + "/api/session/" + sess.ID + "/violations")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr violationsResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("violations after structural edits: %d %v", resp.StatusCode, err)
	}
	for _, v := range vr.Violations {
		if v.Row1 < 1 || v.Row1 > n || v.Row2 < 1 || v.Row2 > n {
			t.Fatalf("violation rows out of range: %+v", v)
		}
	}
}

// TestStructuralEditValidation: malformed structural edits answer 400
// and leave the session untouched.
func TestStructuralEditValidation(t *testing.T) {
	ts := newTestServer(t)
	sess := createSession(t, ts)
	n := len(sess.Table.Rows)
	outOfRange := n + 1
	zero := 0
	bad := []editRequest{
		{InsertRow: []string{"too", "short"}},
		{DeleteRow: &outOfRange},
		{DeleteRow: &zero},
		{Batch: []batchOpJSON{{Op: "upsert"}}},
		{Batch: []batchOpJSON{{Op: "set", Row: 1, Col: "Nope", Value: "x"}}},
		{Batch: []batchOpJSON{{Op: "set", Row: n + 5, Col: "Team", Value: "x"}}},
		{Batch: []batchOpJSON{{Op: "insert", Values: []string{"short"}}}},
	}
	for i, req := range bad {
		if status, raw := post(t, editURL(ts, sess.ID), req, nil); status != http.StatusBadRequest {
			t.Fatalf("bad edit %d: %d %s", i, status, raw)
		}
	}
	var cur sessionJSON
	if status, raw := post(t, editURL(ts, sess.ID), editRequest{AddDC: "C9: !(t1.Year != t2.Year & t1.League = t2.League)"}, &cur); status != http.StatusOK {
		t.Fatalf("probe edit: %d %s", status, raw)
	}
	if len(cur.Table.Rows) != n {
		t.Fatalf("rejected edits mutated the table: %d rows", len(cur.Table.Rows))
	}
}

// TestIngestEndpoint streams a raw CSV body into a session — the batch
// ingest path — and checks schema enforcement over the wire.
func TestIngestEndpoint(t *testing.T) {
	ts := newTestServer(t)
	sess := createSession(t, ts)
	n := len(sess.Table.Rows)

	body := "Team,City,Country,League,Year,Place\nEibar,Eibar,Spain,La Liga,2019,7\nLevante,Valencia,Spain,La Liga,2019,8\n"
	resp, err := http.Post(ts.URL+"/api/session/"+sess.ID+"/ingest", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %v", resp.StatusCode, err)
	}
	if ir.Appended != 2 || len(ir.Session.Table.Rows) != n+2 {
		t.Fatalf("ingest appended %d, table %d rows", ir.Appended, len(ir.Session.Table.Rows))
	}
	if got := ir.Session.History[len(ir.Session.History)-1]; got != "ingest 2 rows (csv)" {
		t.Fatalf("ingest history = %q", got)
	}

	// A header that does not match the session schema answers 400.
	mismatch, err := http.Post(ts.URL+"/api/session/"+sess.ID+"/ingest", "text/csv",
		strings.NewReader("Nope,Wrong\na,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	mismatch.Body.Close()
	if mismatch.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched header: %d", mismatch.StatusCode)
	}
}

// TestCorruptSpoolBatchMarkersDegrade: a spool snapshot whose history
// lost its batch closer (truncated write) fails the restore cleanly —
// the request answers an error; the server neither panics nor serves a
// session state no live session ever reached.
func TestCorruptSpoolBatchMarkersDegrade(t *testing.T) {
	srv := New()
	srv.Workers = 1
	srv.SpoolDir = t.TempDir()
	srv.MaxLiveSessions = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := createSession(t, ts)
	// A batch writes bracket markers into the history.
	status, raw := post(t, editURL(ts, first.ID), editRequest{Batch: []batchOpJSON{
		{Op: "set", Row: 1, Col: "City", Value: "Girona"},
	}}, nil)
	if status != http.StatusOK {
		t.Fatalf("batch edit: %d %s", status, raw)
	}
	// A second session evicts the first to the spool.
	createSession(t, ts)
	spool := filepath.Join(srv.SpoolDir, first.ID+".json")
	buf, err := os.ReadFile(spool)
	if err != nil {
		t.Fatalf("no spool snapshot: %v", err)
	}
	// Corrupt the snapshot the way a torn write would: drop the closing
	// batch marker from the history.
	corrupted := strings.Replace(string(buf), `,"batch end"`, "", 1)
	if corrupted == string(buf) {
		t.Fatalf("batch end marker not found in spool:\n%s", buf)
	}
	if err := os.WriteFile(spool, []byte(corrupted), 0o600); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/api/session/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("corrupt spool restore must not answer 200")
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["error"], "batch") {
		t.Fatalf("error %q does not name the batch bracket", out["error"])
	}
}
