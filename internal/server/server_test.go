package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const paperCSV = `Team,City,Country,League,Year,Place
Barcelona,Barcelona,Spain,La Liga,2019,1
Atletico Madrid,Madrid,Spain,La Liga,2019,2
Real Madrid,Madrid,Spain,La Liga,2019,3
Sevilla,Sevilla,Spian,La Liga,2019,4
Real Madrid,Capital,España,La Liga,2018,1
Real Madrid,Madrid,Spain,La Liga,2017,1
`

const paperDCText = `C1: !(t1.Team = t2.Team & t1.City != t2.City)
C2: !(t1.City = t2.City & t1.Country != t2.Country)
C3: !(t1.League = t2.League & t1.Country != t2.Country)
C4: !(t1.Team != t2.Team & t1.Year = t2.Year & t1.League = t2.League & t1.Place = t2.Place)
`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %s: %v", raw.String(), err)
		}
	}
	return resp.StatusCode, raw.String()
}

func createSession(t *testing.T, ts *httptest.Server) sessionJSON {
	t.Helper()
	var sess sessionJSON
	status, raw := post(t, ts.URL+"/api/session", createSessionRequest{CSV: paperCSV, DCs: paperDCText}, &sess)
	if status != http.StatusOK {
		t.Fatalf("create session: %d %s", status, raw)
	}
	return sess
}

func TestIndexServed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(body.String(), "T-REx") {
		t.Fatalf("index: %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Type") != "text/html; charset=utf-8" {
		t.Errorf("content type %q", resp.Header.Get("Content-Type"))
	}
	notFound, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	notFound.Body.Close()
	if notFound.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: %d", notFound.StatusCode)
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Algorithms []string `json:"algorithms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Algorithms) != 4 {
		t.Fatalf("algorithms = %v", out.Algorithms)
	}
	for i := 1; i < len(out.Algorithms); i++ {
		if out.Algorithms[i] < out.Algorithms[i-1] {
			t.Fatal("algorithm list must be sorted")
		}
	}
}

func TestCreateSessionAndGet(t *testing.T) {
	ts := newTestServer(t)
	sess := createSession(t, ts)
	if sess.ID == "" || len(sess.Table.Rows) != 6 || len(sess.DCs) != 4 {
		t.Fatalf("session = %+v", sess)
	}
	resp, err := http.Get(ts.URL + "/api/session/" + sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get session: %d", resp.StatusCode)
	}
	missing, err := http.Get(ts.URL + "/api/session/s999")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("missing session: %d", missing.StatusCode)
	}
}

func TestCreateSessionValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []createSessionRequest{
		{CSV: "", DCs: paperDCText},
		{CSV: paperCSV, DCs: "C1: !(t1.Nope = t2.Nope)"},
		{CSV: paperCSV, DCs: "garbage("},
		{CSV: paperCSV, DCs: paperDCText, Algorithm: "nope"},
	}
	for i, req := range cases {
		status, _ := post(t, ts.URL+"/api/session", req, nil)
		if status != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, status)
		}
	}
}

func TestRepairEndpoint(t *testing.T) {
	ts := newTestServer(t)
	sess := createSession(t, ts)
	var rep repairResponse
	status, raw := post(t, ts.URL+"/api/session/"+sess.ID+"/repair", struct{}{}, &rep)
	if status != http.StatusOK {
		t.Fatalf("repair: %d %s", status, raw)
	}
	want := map[string]bool{"t4[Country]": true, "t5[City]": true, "t5[Country]": true}
	if len(rep.Repaired) != len(want) {
		t.Fatalf("repaired = %v", rep.Repaired)
	}
	for _, name := range rep.Repaired {
		if !want[name] {
			t.Errorf("unexpected repaired cell %s", name)
		}
	}
	if rep.Clean.Rows[4][2] != "Spain" {
		t.Errorf("clean t5[Country] = %q", rep.Clean.Rows[4][2])
	}
}

func TestExplainConstraintsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	sess := createSession(t, ts)
	var rep explainResponse
	status, raw := post(t, ts.URL+"/api/session/"+sess.ID+"/explain",
		explainRequest{Cell: "t5[Country]", Kind: "constraints"}, &rep)
	if status != http.StatusOK {
		t.Fatalf("explain: %d %s", status, raw)
	}
	if rep.Kind != "constraints" || rep.Target != "Spain" || len(rep.Entries) != 4 {
		t.Fatalf("response = %+v", rep)
	}
	if rep.Entries[0].Name != "C3" {
		t.Errorf("top = %s, want C3", rep.Entries[0].Name)
	}
}

func TestExplainCellsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	sess := createSession(t, ts)
	var rep explainResponse
	status, raw := post(t, ts.URL+"/api/session/"+sess.ID+"/explain",
		explainRequest{Cell: "t5[Country]", Kind: "cells", Samples: 300, Seed: 42}, &rep)
	if status != http.StatusOK {
		t.Fatalf("explain: %d %s", status, raw)
	}
	if len(rep.Entries) != 35 {
		t.Fatalf("entries = %d", len(rep.Entries))
	}
	if rep.Entries[0].Name != "t5[League]" {
		t.Errorf("top = %s, want t5[League]", rep.Entries[0].Name)
	}
}

func TestExplainExtendedKinds(t *testing.T) {
	ts := newTestServer(t)
	sess := createSession(t, ts)
	url := ts.URL + "/api/session/" + sess.ID + "/explain"

	var topk explainResponse
	if status, raw := post(t, url, explainRequest{Cell: "t5[Country]", Kind: "cells-topk", K: 3, Samples: 400, Seed: 42}, &topk); status != 200 {
		t.Fatalf("cells-topk: %d %s", status, raw)
	}
	if len(topk.Entries) != 3 || topk.Entries[0].Name != "t5[League]" {
		t.Errorf("topk = %+v", topk.Entries)
	}

	var rows explainResponse
	if status, raw := post(t, url, explainRequest{Cell: "t5[Country]", Kind: "rows"}, &rows); status != 200 {
		t.Fatalf("rows: %d %s", status, raw)
	}
	if len(rows.Entries) != 6 || rows.Entries[0].Name != "row t5" {
		t.Errorf("rows = %+v", rows.Entries)
	}

	var cols explainResponse
	if status, raw := post(t, url, explainRequest{Cell: "t5[Country]", Kind: "columns"}, &cols); status != 200 {
		t.Fatalf("columns: %d %s", status, raw)
	}
	if len(cols.Entries) != 6 {
		t.Errorf("columns = %+v", cols.Entries)
	}

	var inter explainResponse
	if status, raw := post(t, url, explainRequest{Cell: "t5[Country]", Kind: "interaction"}, &inter); status != 200 {
		t.Fatalf("interaction: %d %s", status, raw)
	}
	if len(inter.Entries) != 6 || inter.Entries[0].Name != "I(C1,C2)" {
		t.Errorf("interaction = %+v", inter.Entries)
	}

	var toward explainResponse
	if status, raw := post(t, url, explainRequest{Cell: "t5[Country]", Kind: "toward", Desired: "Portugal"}, &toward); status != 200 {
		t.Fatalf("toward: %d %s", status, raw)
	}
	for _, e := range toward.Entries {
		if e.Shapley != 0 {
			t.Errorf("toward Portugal: %s = %v, want 0", e.Name, e.Shapley)
		}
	}
	// toward without a desired value is a 400.
	if status, _ := post(t, url, explainRequest{Cell: "t5[Country]", Kind: "toward"}, nil); status != http.StatusBadRequest {
		t.Errorf("toward without desired: %d", status)
	}
}

func TestExplainValidation(t *testing.T) {
	ts := newTestServer(t)
	sess := createSession(t, ts)
	for i, req := range []explainRequest{
		{Cell: "nonsense"},
		{Cell: "t1[Nope]"},
		{Cell: "t5[Country]", Kind: "martians"},
	} {
		status, _ := post(t, ts.URL+"/api/session/"+sess.ID+"/explain", req, nil)
		if status != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, status)
		}
	}
	// Unrepaired cell: well-formed but unexplainable.
	status, _ := post(t, ts.URL+"/api/session/"+sess.ID+"/explain", explainRequest{Cell: "t1[Team]"}, nil)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("unrepaired cell: status = %d, want 422", status)
	}
}

func TestEditLoop(t *testing.T) {
	// The full Figure 4 loop over HTTP: repair → explain → remove top DC →
	// re-repair and observe the changed output.
	ts := newTestServer(t)
	sess := createSession(t, ts)
	url := ts.URL + "/api/session/" + sess.ID

	var rep explainResponse
	if status, raw := post(t, url+"/explain", explainRequest{Cell: "t5[Country]"}, &rep); status != 200 {
		t.Fatalf("explain: %d %s", status, raw)
	}
	top := rep.Entries[0].Name

	var after sessionJSON
	if status, raw := post(t, url+"/edit", editRequest{RemoveDC: top}, &after); status != 200 {
		t.Fatalf("edit: %d %s", status, raw)
	}
	if len(after.DCs) != 3 || len(after.History) != 1 {
		t.Fatalf("after = %+v", after)
	}

	// Also edit a cell: fix t5[League] so the C3 pathway is gone.
	if status, raw := post(t, url+"/edit", editRequest{SetCell: "t5[League]", Value: "Liga X"}, &after); status != 200 {
		t.Fatalf("edit cell: %d %s", status, raw)
	}
	if after.Table.Rows[4][3] != "Liga X" {
		t.Fatalf("cell edit not applied: %+v", after.Table.Rows[4])
	}

	var r2 repairResponse
	if status, raw := post(t, url+"/repair", struct{}{}, &r2); status != 200 {
		t.Fatalf("re-repair: %d %s", status, raw)
	}
	// With C3 removed and the League link broken, the repair of
	// t5[Country] must still happen via C1+C2 (City pathway).
	if r2.Clean.Rows[4][2] != "Spain" {
		t.Errorf("t5[Country] after edits = %q (City pathway should still fix it)", r2.Clean.Rows[4][2])
	}
}

func TestEditValidation(t *testing.T) {
	ts := newTestServer(t)
	sess := createSession(t, ts)
	url := ts.URL + "/api/session/" + sess.ID + "/edit"
	for i, req := range []editRequest{
		{},
		{SetCell: "bogus", Value: "x"},
		{RemoveDC: "C99"},
		{AddDC: "not a dc"},
	} {
		status, _ := post(t, url, req, nil)
		if status != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, status)
		}
	}
}

func TestMalformedJSONBody(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/session", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestConcurrentSessions(t *testing.T) {
	ts := newTestServer(t)
	const n = 8
	done := make(chan error, n)
	for w := 0; w < n; w++ {
		go func() {
			done <- func() error {
				var sess sessionJSON
				status, raw := post(t, ts.URL+"/api/session", createSessionRequest{CSV: paperCSV, DCs: paperDCText}, &sess)
				if status != 200 {
					return fmt.Errorf("create: %d %s", status, raw)
				}
				var rep repairResponse
				if status, raw := post(t, ts.URL+"/api/session/"+sess.ID+"/repair", struct{}{}, &rep); status != 200 {
					return fmt.Errorf("repair: %d %s", status, raw)
				}
				return nil
			}()
		}()
	}
	ids := map[string]bool{}
	for w := 0; w < n; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		_ = ids
	}
}
