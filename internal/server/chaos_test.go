package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
)

// chaosSeeds mirrors the core suite's matrix resolution: CHAOS_SEEDS env
// (the CI chaos job's matrix) or a built-in default.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		var seeds []int64
		for _, f := range strings.Split(env, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				t.Fatalf("CHAOS_SEEDS: %v", err)
			}
			seeds = append(seeds, n)
		}
		return seeds
	}
	if testing.Short() {
		return []int64{1, 2}
	}
	return []int64{1, 2, 3, 4, 5, 6, 7, 8}
}

// assertGoroutinesSettle fails if the goroutine count does not return
// near the baseline — the leak fence around the in-process server tests.
func assertGoroutinesSettle(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, n, buf)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosServerSeededSchedules storms a spool-backed server with
// explain/edit/repair traffic while a seeded fault schedule fires panics,
// slow workers, I/O errors and overruns inside it. The process must keep
// answering from the documented status ladder (no 5xx: in-session panics
// quarantine with 409, failed spool writes keep sessions live), and after
// the schedule is done the server must serve a brand-new session with
// answers bit-identical to an unfaulted server's — chaos in one session
// poisons nothing shared.
func TestChaosServerSeededSchedules(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	// The unfaulted baseline answer for a fresh session's seeded explain.
	baseSrv := New()
	baseSrv.Workers = 2
	baseTS := httptest.NewServer(baseSrv.Handler())
	baseSess := createSession(t, baseTS)
	status, wantExplain := post(t, baseTS.URL+"/api/session/"+baseSess.ID+"/explain", explainBody(), nil)
	if status != http.StatusOK {
		t.Fatalf("baseline explain: %d %s", status, wantExplain)
	}
	baseTS.Close()

	sites := []faults.Site{
		faults.SiteWorkerStart, faults.SiteCacheStore,
		faults.SiteEditReplay, faults.SiteSnapshotWrite,
	}
	kinds := []faults.Kind{
		faults.KindPanic, faults.KindSlow, faults.KindError, faults.KindOverrun,
	}

	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			srv := New()
			srv.Workers = 2
			srv.ExplainSamples = 16
			srv.SpoolDir = t.TempDir()
			srv.MaxLiveSessions = 1
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			ids := []string{createSession(t, ts).ID, createSession(t, ts).ID}

			inj := faults.NewInjector(faults.SeededRules(seed, 6, sites, kinds)...)
			deactivate := faults.Activate(inj)
			allowed := map[int]bool{
				http.StatusOK:                  true,
				http.StatusConflict:            true, // quarantined by an injected panic
				http.StatusUnprocessableEntity: true, // cell clean after an edit
				http.StatusTooManyRequests:     true, // admission shed
			}
			for i := 0; i < 4; i++ {
				for _, id := range ids {
					base := ts.URL + "/api/session/" + id
					st, body := post(t, base+"/edit", map[string]string{
						"setCell": "t1[City]", "value": []string{"Barcelona", "Girona"}[i%2],
					}, nil)
					if !allowed[st] {
						deactivate()
						t.Fatalf("seed %d: edit status %d (%s)", seed, st, body)
					}
					st, body = post(t, base+"/explain", explainBody(), nil)
					if !allowed[st] {
						deactivate()
						t.Fatalf("seed %d: explain status %d (%s)", seed, st, body)
					}
					st, body = post(t, base+"/repair", map[string]string{}, nil)
					if !allowed[st] {
						deactivate()
						t.Fatalf("seed %d: repair status %d (%s)", seed, st, body)
					}
				}
			}
			deactivate()
			t.Logf("seed %d: %d faults fired", seed, len(inj.Fired()))

			// The process is still healthy and shared state is unpoisoned: a
			// brand-new session answers exactly like the unfaulted baseline.
			resp, err := ts.Client().Get(ts.URL + "/api/algorithms")
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("health check after chaos: %v / %v", err, resp)
			}
			resp.Body.Close()
			fresh := createSession(t, ts)
			st, got := post(t, ts.URL+"/api/session/"+fresh.ID+"/explain", explainBody(), nil)
			if st != http.StatusOK {
				t.Fatalf("fresh explain after chaos: %d %s", st, got)
			}
			if got != wantExplain {
				t.Fatalf("chaos poisoned shared state:\n%s\nvs baseline\n%s", got, wantExplain)
			}
		})
	}

	assertGoroutinesSettle(t, goroutinesBefore)
}
