package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

func getViolations(t *testing.T, url string) violationsResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("violations: %d", resp.StatusCode)
	}
	var out violationsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestViolationsEndpoint drives the live-violation view through the edit
// loop: the paper table starts inconsistent, fixing the dirty cells drains
// the list, and re-dirtying a cell brings it back.
func TestViolationsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	sess := createSession(t, ts)
	url := ts.URL + "/api/session/" + sess.ID + "/violations"

	out := getViolations(t, url)
	if out.Consistent || len(out.Violations) == 0 {
		t.Fatalf("paper table must start with violations: %+v", out)
	}
	for _, v := range out.Violations {
		if v.Constraint == "" || v.Row1 < 1 || v.Row2 < 1 {
			t.Fatalf("malformed violation row: %+v", v)
		}
	}

	// Repair the two dirty cells of the paper example by hand.
	for _, edit := range []editRequest{
		{SetCell: "t5[City]", Value: "Madrid"},
		{SetCell: "t5[Country]", Value: "Spain"},
		{SetCell: "t4[Country]", Value: "Spain"},
	} {
		if status, raw := post(t, ts.URL+"/api/session/"+sess.ID+"/edit", edit, nil); status != http.StatusOK {
			t.Fatalf("edit %+v: %d %s", edit, status, raw)
		}
	}
	out = getViolations(t, url)
	if !out.Consistent || len(out.Violations) != 0 {
		t.Fatalf("hand-repaired table must be consistent: %+v", out)
	}

	// Re-dirty one cell: the incremental list must re-derive its pairs.
	if status, raw := post(t, ts.URL+"/api/session/"+sess.ID+"/edit",
		editRequest{SetCell: "t5[Country]", Value: "España"}, nil); status != http.StatusOK {
		t.Fatalf("re-dirty: %d %s", status, raw)
	}
	out = getViolations(t, url)
	if out.Consistent || len(out.Violations) == 0 {
		t.Fatalf("re-dirtied table must violate again: %+v", out)
	}

	// Unknown session id.
	resp, err := http.Get(ts.URL + "/api/session/nope/violations")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: %d", resp.StatusCode)
	}
}
