package server

import "net/http"

// handleIndex serves the embedded single-page GUI: the input screen
// (Figure 3a), repair screen (3b) and explanation screen (3c).
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

// indexHTML is the GUI. It exercises the same JSON API that the tests and
// the CLI use; no server-side templating is involved.
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>T-REx: Table Repair Explanations</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
  h1 { font-size: 1.4rem; }
  .screens { display: flex; gap: 2rem; flex-wrap: wrap; }
  .screen { border: 1px solid #ccc; border-radius: 8px; padding: 1rem; min-width: 22rem; flex: 1; }
  textarea { width: 100%; font-family: monospace; font-size: 0.85rem; }
  table { border-collapse: collapse; margin-top: .5rem; }
  td, th { border: 1px solid #bbb; padding: .25rem .5rem; font-size: .85rem; }
  td.repaired { background: #cfe8ff; cursor: pointer; }
  td.selected { outline: 2px solid #0366d6; }
  .rank { margin: .15rem 0; padding: .2rem .4rem; border-radius: 4px; }
  button { margin-top: .5rem; }
  .err { color: #b00020; white-space: pre-wrap; }
</style>
</head>
<body>
<h1>T-REx: Table Repair Explanations</h1>
<div class="screens">
  <div class="screen" id="input-screen">
    <h2>1 · Input</h2>
    <label>Dirty table (CSV)</label>
    <textarea id="csv" rows="9">Team,City,Country,League,Year,Place
Barcelona,Barcelona,Spain,La Liga,2019,1
Atletico Madrid,Madrid,Spain,La Liga,2019,2
Real Madrid,Madrid,Spain,La Liga,2019,3
Sevilla,Sevilla,Spian,La Liga,2019,4
Real Madrid,Capital,España,La Liga,2018,1
Real Madrid,Madrid,Spain,La Liga,2017,1</textarea>
    <label>Denial constraints</label>
    <textarea id="dcs" rows="5">C1: !(t1.Team = t2.Team & t1.City != t2.City)
C2: !(t1.City = t2.City & t1.Country != t2.Country)
C3: !(t1.League = t2.League & t1.Country != t2.Country)
C4: !(t1.Team != t2.Team & t1.Year = t2.Year & t1.League = t2.League & t1.Place = t2.Place)</textarea>
    <label>Algorithm <select id="alg"></select></label>
    <br><button id="repair">Repair</button>
    <div class="err" id="input-err"></div>
  </div>
  <div class="screen" id="repair-screen">
    <h2>2 · Repair</h2>
    <p>Repaired cells are highlighted; click one, then Explain. Hover shows the dirty value.</p>
    <div id="clean-table"></div>
    <label>kind
      <select id="kind">
        <option value="constraints" selected>constraints</option>
        <option value="cells">cells</option>
        <option value="cells-topk">cells (top-5, adaptive)</option>
        <option value="rows">rows</option>
        <option value="columns">columns</option>
        <option value="interaction">constraint interactions</option>
      </select>
    </label>
    <button id="explain" disabled>Explain</button>
    <div class="err" id="repair-err"></div>
  </div>
  <div class="screen" id="explain-screen">
    <h2>3 · Explanation</h2>
    <div id="ranking"></div>
  </div>
</div>
<script>
let sessionId = null, selectedCell = null, dirtyRows = null;
const $ = (id) => document.getElementById(id);

async function api(path, body) {
  const res = await fetch(path, body === undefined ? {} : {
    method: 'POST', headers: {'Content-Type': 'application/json'},
    body: JSON.stringify(body)});
  const data = await res.json();
  if (!res.ok) throw new Error(data.error || res.statusText);
  return data;
}

async function loadAlgs() {
  const data = await api('/api/algorithms');
  $('alg').innerHTML = data.algorithms.map(a =>
    '<option' + (a === 'algorithm1' ? ' selected' : '') + '>' + a + '</option>').join('');
}

$('repair').onclick = async () => {
  $('input-err').textContent = ''; $('repair-err').textContent = '';
  try {
    const sess = await api('/api/session', {
      csv: $('csv').value, dcs: $('dcs').value, algorithm: $('alg').value});
    sessionId = sess.id; dirtyRows = sess.table.rows;
    const rep = await api('/api/session/' + sessionId + '/repair', {});
    renderClean(sess.table.columns, rep.clean.rows, new Set(rep.repaired));
  } catch (e) { $('input-err').textContent = e.message; }
};

function cellName(r, c, columns) { return 't' + (r + 1) + '[' + columns[c] + ']'; }

function renderClean(columns, rows, repaired) {
  const tbl = document.createElement('table');
  tbl.innerHTML = '<tr>' + columns.map(c => '<th>' + c + '</th>').join('') + '</tr>';
  rows.forEach((row, r) => {
    const tr = document.createElement('tr');
    row.forEach((val, c) => {
      const td = document.createElement('td');
      td.textContent = val;
      const name = cellName(r, c, columns);
      if (repaired.has(name)) {
        td.className = 'repaired';
        td.title = 'was: ' + dirtyRows[r][c];
        td.onclick = () => {
          selectedCell = name;
          document.querySelectorAll('td.selected').forEach(x => x.classList.remove('selected'));
          td.classList.add('selected');
          $('explain').disabled = false;
        };
      }
      tr.appendChild(td);
    });
    tbl.appendChild(tr);
  });
  $('clean-table').replaceChildren(tbl);
  $('explain').disabled = true; selectedCell = null;
}

$('explain').onclick = async () => {
  $('repair-err').textContent = '';
  const kind = $('kind').value;
  try {
    const rep = await api('/api/session/' + sessionId + '/explain', {cell: selectedCell, kind});
    renderRanking(rep);
  } catch (e) { $('repair-err').textContent = e.message; }
};

function renderRanking(rep) {
  const max = Math.max(...rep.entries.map(e => e.Shapley), 1e-9);
  $('ranking').innerHTML = '<p>Repair of <b>' + rep.cell + '</b> → <b>' + rep.target +
    '</b> (' + rep.algorithm + ')</p>' +
    rep.entries.map(e => {
      const green = Math.round(232 - 160 * Math.max(e.Shapley, 0) / max);
      return '<div class="rank" style="background: rgb(' + green + ',232,' + green + ')" title="' +
        e.Shapley.toFixed(4) + (e.Samples ? ' ± ' + e.CI95.toFixed(4) : '') + '">' +
        e.Name + ' — ' + e.Shapley.toFixed(4) + '</div>';
    }).join('');
}

loadAlgs();
</script>
</body>
</html>
`
