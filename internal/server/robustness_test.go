package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dc"
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/table"
)

// jsonPost is post without the status assertion, for tests that need the
// raw response (headers included).
func jsonPost(client *http.Client, url string, body any) (*http.Response, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return client.Post(url, "application/json", bytes.NewReader(raw))
}

// freshSession rebuilds the paper session exactly as handleCreateSession
// does, engine and all, for never-faulted baselines.
func freshSession(t *testing.T) *core.Session {
	t.Helper()
	tbl, err := table.ReadCSV(strings.NewReader(paperCSV))
	if err != nil {
		t.Fatal(err)
	}
	dcs, err := dc.ParseSet(paperDCText)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSessionWith(repair.NewAlgorithm1(), dcs, tbl, core.SessionOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func mustRef(t *testing.T, sess *core.Session, name string) table.CellRef {
	t.Helper()
	ref, err := sess.Dirty().ParseRefName(name)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// explainBody is the seeded cell-explain request the bit-identity tests
// replay; fixed samples and seed make the answer a pure function of
// session state.
func explainBody() map[string]any {
	return map[string]any{"cell": "t5[Country]", "kind": "cells", "samples": 16, "seed": 7}
}

// entryOf reaches into the registry for a session's bookkeeping entry.
func entryOf(t *testing.T, srv *Server, id string) *session {
	t.Helper()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	entry := srv.sessions[id]
	if entry == nil {
		t.Fatalf("no session %s", id)
	}
	return entry
}

// TestSaturationReturns429: with every in-flight slot taken, heavy
// endpoints shed load crisply — 429 plus a Retry-After hint — and recover
// as soon as a slot frees.
func TestSaturationReturns429(t *testing.T) {
	srv := New()
	srv.MaxInFlight = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sess := createSession(t, ts)
	base := ts.URL + "/api/session/" + sess.ID

	release, ok := srv.admit()
	if !ok {
		t.Fatal("could not take the only slot")
	}
	raw, err := jsonPost(ts.Client(), base+"/explain", explainBody())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	if raw.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated explain: status %d, want 429", raw.StatusCode)
	}
	if raw.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	rep, err := jsonPost(ts.Client(), base+"/repair", map[string]string{})
	if err != nil {
		t.Fatal(err)
	}
	rep.Body.Close()
	if rep.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated repair: status %d, want 429", rep.StatusCode)
	}

	release()
	if status, body := post(t, base+"/explain", explainBody(), nil); status != http.StatusOK {
		t.Fatalf("explain after release: %d %s", status, body)
	}
}

// TestTimeoutReleasesWorkers: a request that exceeds the per-request
// deadline answers 408, the underlying computation is cancelled (not left
// running into the void), every worker slot returns to the pool, and the
// session's caches carry no partial work.
func TestTimeoutReleasesWorkers(t *testing.T) {
	srv := New()
	srv.Workers = 2
	srv.RequestTimeout = 50 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sess := createSession(t, ts)
	base := ts.URL + "/api/session/" + sess.ID

	entry := entryOf(t, srv, sess.ID)
	entry.mu.Lock()
	eng := entry.sess.Engine()
	idleBefore := eng.Pool().IdleHelpers()
	coalLen, coalFp := eng.Cache().Len(), eng.Cache().Fingerprint()
	repairLen := eng.RepairTargets().Len()
	entry.mu.Unlock()

	// Both fan-out workers oversleep the deadline; their first checkpoint
	// after waking observes the expired context.
	inj := faults.NewInjector(
		faults.Rule{Site: faults.SiteWorkerStart, Ordinal: 1, Kind: faults.KindSlow, Delay: 400 * time.Millisecond},
		faults.Rule{Site: faults.SiteWorkerStart, Ordinal: 2, Kind: faults.KindSlow, Delay: 400 * time.Millisecond},
	)
	deactivate := faults.Activate(inj)
	status, body := post(t, base+"/explain", explainBody(), nil)
	deactivate()
	if status != http.StatusRequestTimeout {
		t.Fatalf("slow explain: status %d (%s), want 408", status, body)
	}
	if len(inj.Fired()) == 0 {
		t.Fatal("slow-worker rules never fired; the test exercised nothing")
	}

	entry.mu.Lock()
	defer entry.mu.Unlock()
	if got := eng.Pool().IdleHelpers(); got != idleBefore {
		t.Fatalf("idle helpers %d after 408, want %d (workers leaked)", got, idleBefore)
	}
	if eng.Cache().Len() != coalLen || eng.Cache().Fingerprint() != coalFp {
		t.Fatal("408 left partial work in the coalition cache")
	}
	if eng.RepairTargets().Len() != repairLen {
		t.Fatal("408 left partial work in the repair cache")
	}
	// The session still computes, and answers exactly what a never-faulted
	// session answers.
	got, err := entry.sess.Explainer().ExplainCells(context.Background(),
		mustRef(t, entry.sess, "t5[Country]"), core.CellExplainOptions{Samples: 16, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatalf("explain after 408: %v", err)
	}
	fresh := freshSession(t)
	want, err := fresh.Explainer().ExplainCells(context.Background(),
		mustRef(t, fresh, "t5[Country]"), core.CellExplainOptions{Samples: 16, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("entry count %d vs %d", len(got.Entries), len(want.Entries))
	}
	for i := range got.Entries {
		if got.Entries[i] != want.Entries[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, got.Entries[i], want.Entries[i])
		}
	}
}

// TestPanicQuarantinesSession: a panic inside one session's request is
// contained — that session answers 409 with diagnostics from then on,
// while other sessions and the process itself keep working.
func TestPanicQuarantinesSession(t *testing.T) {
	srv := New()
	srv.Workers = 2
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	victim := createSession(t, ts)
	bystander := createSession(t, ts)

	inj := faults.NewInjector(faults.Rule{Site: faults.SiteWorkerStart, Ordinal: 1, Kind: faults.KindPanic})
	deactivate := faults.Activate(inj)
	status, body := post(t, ts.URL+"/api/session/"+victim.ID+"/explain", explainBody(), nil)
	deactivate()
	if status != http.StatusConflict {
		t.Fatalf("panicked explain: status %d (%s), want 409", status, body)
	}
	if !strings.Contains(body, "quarantined") {
		t.Fatalf("409 body carries no diagnostics: %s", body)
	}

	// The quarantine is sticky: explain, repair and edit all refuse.
	for _, probe := range []struct {
		path string
		req  any
	}{
		{"/explain", explainBody()},
		{"/repair", map[string]string{}},
		{"/edit", map[string]string{"setCell": "t1[City]", "value": "X"}},
	} {
		if status, _ := post(t, ts.URL+"/api/session/"+victim.ID+probe.path, probe.req, nil); status != http.StatusConflict {
			t.Fatalf("%s on quarantined session: status %d, want 409", probe.path, status)
		}
	}

	// The bystander session is untouched.
	if status, body := post(t, ts.URL+"/api/session/"+bystander.ID+"/explain", explainBody(), nil); status != http.StatusOK {
		t.Fatalf("bystander explain: %d %s", status, body)
	}
}

// TestEvictRestoreBitIdentical: an LRU-evicted session is restored from
// its spool snapshot on the next touch and answers bit-identically.
func TestEvictRestoreBitIdentical(t *testing.T) {
	srv := New()
	srv.Workers = 2
	srv.SpoolDir = t.TempDir()
	srv.MaxLiveSessions = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := createSession(t, ts)
	status, before := post(t, ts.URL+"/api/session/"+first.ID+"/explain", explainBody(), nil)
	if status != http.StatusOK {
		t.Fatalf("baseline explain: %d %s", status, before)
	}

	// A second session pushes the first over the live budget.
	second := createSession(t, ts)
	entry := entryOf(t, srv, first.ID)
	entry.mu.Lock()
	spooled := entry.spooled
	entry.mu.Unlock()
	if !spooled {
		t.Fatal("LRU session not evicted")
	}
	if _, err := os.Stat(filepath.Join(srv.SpoolDir, first.ID+".json")); err != nil {
		t.Fatalf("no spool snapshot: %v", err)
	}

	// Touching the evicted session restores it transparently.
	status, after := post(t, ts.URL+"/api/session/"+first.ID+"/explain", explainBody(), nil)
	if status != http.StatusOK {
		t.Fatalf("restored explain: %d %s", status, after)
	}
	if after != before {
		t.Fatalf("restored session answers differently:\n%s\nvs\n%s", after, before)
	}
	// And the restore evicted the other session in turn — the budget holds.
	other := entryOf(t, srv, second.ID)
	other.mu.Lock()
	otherSpooled := other.spooled
	other.mu.Unlock()
	if !otherSpooled {
		t.Fatal("budget not enforced after restore")
	}
}

// TestConcurrentEvictionVsInFlight storms explain/edit/violations traffic
// across three sessions under a one-session live budget, so evictions and
// restores race in-flight requests. Run under -race (the CI race job
// does); afterwards an evicted-then-restored session must answer exactly
// as it did before eviction.
func TestConcurrentEvictionVsInFlight(t *testing.T) {
	srv := New()
	srv.Workers = 2
	srv.ExplainSamples = 4
	srv.MaxInFlight = 16
	srv.SpoolDir = t.TempDir()
	srv.MaxLiveSessions = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	ids := make([]string, 3)
	for i := range ids {
		var out struct {
			ID string `json:"id"`
		}
		status, raw := post(t, ts.URL+"/api/session", createSessionRequest{CSV: raceCSV, DCs: raceDCs}, &out)
		if status != http.StatusOK {
			t.Fatalf("create session: %d %s", status, raw)
		}
		ids[i] = out.ID
	}

	var wg sync.WaitGroup
	errs := make(chan string, len(ids)*32)
	for w, id := range ids {
		wg.Add(1)
		go func(w int, id string) {
			defer wg.Done()
			base := ts.URL + "/api/session/" + id
			for i := 0; i < 6; i++ {
				status, _ := post(t, base+"/edit", map[string]string{
					"setCell": "t2[City]", "value": []string{"Capital", "Centro", "Madrid"}[(w+i)%3],
				}, nil)
				if status != http.StatusOK {
					errs <- fmt.Sprintf("edit: status %d", status)
				}
				status, _ = post(t, base+"/explain", map[string]any{"cell": "t2[City]", "kind": "constraints"}, nil)
				// 422: a concurrent edit made the cell clean; 429: admission
				// shed the request. Both are contracts, not failures.
				if status != http.StatusOK && status != http.StatusUnprocessableEntity && status != http.StatusTooManyRequests {
					errs <- fmt.Sprintf("explain: status %d", status)
				}
				resp, err := client.Get(base + "/violations")
				if err != nil {
					errs <- err.Error()
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("violations: status %d", resp.StatusCode)
				}
			}
		}(w, id)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Pin session 0 to a known state and record its answer.
	target := ts.URL + "/api/session/" + ids[0]
	if status, raw := post(t, target+"/edit", map[string]string{"setCell": "t2[City]", "value": "Capital"}, nil); status != http.StatusOK {
		t.Fatalf("final edit: %d %s", status, raw)
	}
	status, before := post(t, target+"/explain", map[string]any{"cell": "t2[City]", "kind": "cells", "samples": 16, "seed": 3}, nil)
	if status != http.StatusOK {
		t.Fatalf("pre-eviction explain: %d %s", status, before)
	}

	// Touch the other sessions until session 0 is evicted.
	for i := 1; i < len(ids); i++ {
		resp, err := client.Get(ts.URL + "/api/session/" + ids[i] + "/violations")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	entry := entryOf(t, srv, ids[0])
	entry.mu.Lock()
	spooled := entry.spooled
	entry.mu.Unlock()
	if !spooled {
		t.Fatal("session 0 not evicted after touching the others")
	}

	status, after := post(t, target+"/explain", map[string]any{"cell": "t2[City]", "kind": "cells", "samples": 16, "seed": 3}, nil)
	if status != http.StatusOK {
		t.Fatalf("post-restore explain: %d %s", status, after)
	}
	if after != before {
		t.Fatalf("evicted-then-restored session answers differently:\n%s\nvs\n%s", after, before)
	}
}
