// Package server exposes T-REx over HTTP: a JSON API plus an embedded
// single-page GUI with the three screens of Figure 3 (input, repair,
// explanation) and the iterative edit loop of Figure 4. It substitutes a
// stdlib net/http implementation for the paper's JavaScript/CSS/HTML
// front-end and Python backend (DESIGN.md §6).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/table"
)

// session pairs one core.Session with the mutex that serializes access to
// it: core.Session is not safe for concurrent use, and concurrent requests
// against one session id (repair racing an edit) are routine for a shared
// server. Distinct sessions proceed in parallel; only the registry map is
// behind the server-wide lock.
type session struct {
	mu   sync.Mutex
	sess *core.Session
	// quarantined is set when a request against this session panicked;
	// every later request answers 409 with the diagnostics until restart
	// (the panic may have left black-box scratch state torn, so the
	// session is fenced rather than trusted). Guarded by mu.
	quarantined error
	// spooled marks a session evicted to the spool directory (sess is
	// nil); the next request restores it. Guarded by mu.
	spooled bool
	// lastTouch is the server clock tick of the last request — the LRU
	// eviction key. Guarded by Server.mu.
	lastTouch uint64
}

// Server holds the in-memory session store. Create with New. The handler
// is safe for concurrent requests across and within sessions; the repair
// black boxes in the shared registry are stateless per run (their scratch
// state is pooled internally), so sessions share them freely.
//
// Each session owns its own exec.Engine (coalition cache + worker pool):
// engines are never shared across sessions, so one session's generation
// bumps cannot evict another's cache and the per-session mutex keeps the
// core.Session discipline (concurrent explains fine, edits exclusive)
// intact. The engine itself is safe for the concurrent sampler/repair
// goroutines a single request fans out.
type Server struct {
	mu       sync.Mutex
	sessions map[string]*session
	algs     map[string]repair.Algorithm
	nextID   int
	// ExplainSamples is the sampling budget for cell explanations.
	ExplainSamples int
	// Workers is the per-session engine parallelism (sampling fan-out and
	// repair bucket passes); 0 means GOMAXPROCS. Set before serving.
	// Parallelism never changes results (determinism contracts in shapley
	// and repair), so two servers with different Workers serve identical
	// answers for identical requests.
	Workers int
	// MaxInFlight bounds concurrently executing explain/repair requests;
	// excess requests answer 429 + Retry-After (0 means
	// defaultMaxInFlight). Set before serving.
	MaxInFlight int
	// RequestTimeout, when positive, bounds each explain/repair request's
	// computation; expiry cancels the computation and answers 408.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (0 means defaultMaxBodyBytes).
	MaxBodyBytes int64
	// SpoolDir, when set, enables session survival: LRU-evicted and
	// drained sessions are snapshotted there and restored on demand.
	SpoolDir string
	// MaxLiveSessions is the in-memory session budget behind LRU eviction;
	// 0 disables eviction (sessions only spool at drain).
	MaxLiveSessions int

	// inflight is the admission semaphore (lazily sized from MaxInFlight).
	inflight chan struct{}
	// clock is the LRU recency counter. Guarded by mu.
	clock uint64
}

// New builds a Server with the standard algorithm registry.
func New() *Server {
	s := &Server{
		sessions:       make(map[string]*session),
		algs:           make(map[string]repair.Algorithm),
		ExplainSamples: 400,
	}
	for _, alg := range repair.All(1) {
		s.algs[alg.Name()] = alg
	}
	return s
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/algorithms", s.handleAlgorithms)
	mux.HandleFunc("POST /api/session", s.handleCreateSession)
	mux.HandleFunc("GET /api/session/{id}", s.handleGetSession)
	mux.HandleFunc("POST /api/session/{id}/repair", s.handleRepair)
	mux.HandleFunc("GET /api/session/{id}/violations", s.handleViolations)
	mux.HandleFunc("POST /api/session/{id}/explain", s.handleExplain)
	mux.HandleFunc("POST /api/session/{id}/edit", s.handleEdit)
	mux.HandleFunc("POST /api/session/{id}/ingest", s.handleIngest)
	return recoverAll(s.limitBody(mux))
}

// tableJSON is the wire form of a table.
type tableJSON struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func toTableJSON(t *table.Table) tableJSON {
	out := tableJSON{Columns: t.Schema().Names()}
	for i := 0; i < t.NumRows(); i++ {
		row := make([]string, t.NumCols())
		for j := 0; j < t.NumCols(); j++ {
			v := t.Get(i, j)
			if v.IsNull() {
				row[j] = ""
			} else {
				row[j] = v.String()
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

type sessionJSON struct {
	ID      string    `json:"id"`
	Table   tableJSON `json:"table"`
	DCs     []string  `json:"dcs"`
	History []string  `json:"history"`
}

func (s *Server) sessionJSON(id string, sess *core.Session) sessionJSON {
	out := sessionJSON{ID: id, Table: toTableJSON(sess.Dirty()), History: sess.History}
	for _, c := range sess.DCs() {
		out.DCs = append(out.DCs, c.String())
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.algs))
	for name := range s.algs {
		names = append(names, name)
	}
	s.mu.Unlock()
	// Deterministic order for the UI dropdown.
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string][]string{"algorithms": names})
}

type createSessionRequest struct {
	CSV       string `json:"csv"`
	DCs       string `json:"dcs"`
	Algorithm string `json:"algorithm"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	tbl, err := table.ReadCSV(strings.NewReader(req.CSV))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dcs, err := dc.ParseSet(req.DCs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	algName := req.Algorithm
	if algName == "" {
		algName = "algorithm1"
	}
	s.mu.Lock()
	alg, ok := s.algs[algName]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q", algName))
		return
	}
	sess, err := core.NewSessionWith(alg, dcs, tbl, core.SessionOptions{Workers: s.Workers})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	entry := &session{sess: sess}
	s.mu.Lock()
	s.nextID++
	id := "s" + strconv.Itoa(s.nextID)
	s.sessions[id] = entry
	s.mu.Unlock()
	s.touch(entry)
	entry.mu.Lock()
	resp := s.sessionJSON(id, sess)
	entry.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) session(r *http.Request) (string, *session, error) {
	id := r.PathValue("id")
	s.mu.Lock()
	entry, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return "", nil, fmt.Errorf("no session %q", id)
	}
	// A spooled (LRU-evicted or drained-and-restarted) session is restored
	// on first touch; the restored session answers bit-identically (the
	// snapshot codec's contract), it just starts with cold caches.
	entry.mu.Lock()
	if entry.spooled {
		if err := s.restoreLocked(id, entry); err != nil {
			entry.mu.Unlock()
			return "", nil, err
		}
	}
	entry.mu.Unlock()
	s.touch(entry)
	return id, entry, nil
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	id, entry, err := s.session(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	entry.mu.Lock()
	if err := s.ensureLive(id, entry); err != nil {
		entry.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := s.sessionJSON(id, entry.sess)
	entry.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

type repairResponse struct {
	Clean    tableJSON `json:"clean"`
	Repaired []string  `json:"repaired"` // cell names in paper notation
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	id, entry, err := s.session(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	release, ok := s.admit()
	if !ok {
		reject429(w)
		return
	}
	defer release()
	ctx, cancel := s.reqContext(r)
	defer cancel()
	entry.mu.Lock()
	defer entry.mu.Unlock()
	defer s.guard(w, id, entry)()
	if checkQuarantine(w, entry) {
		return
	}
	if err := s.ensureLive(id, entry); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess := entry.sess
	clean, diffs, err := sess.Repair(ctx)
	if err != nil {
		if ctx.Err() != nil {
			writeError(w, http.StatusRequestTimeout, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := repairResponse{Clean: toTableJSON(clean)}
	for _, d := range diffs {
		resp.Repaired = append(resp.Repaired, sess.Dirty().RefName(d.Ref))
	}
	writeJSON(w, http.StatusOK, resp)
}

// violationJSON is the wire form of one violating pair.
type violationJSON struct {
	Constraint string `json:"constraint"`
	Row1       int    `json:"row1"`
	Row2       int    `json:"row2"`
}

type violationsResponse struct {
	Consistent bool            `json:"consistent"`
	Violations []violationJSON `json:"violations"`
}

// handleViolations answers "what is still broken?" for the edit loop: the
// session's live violation lists, maintained incrementally across edits
// rather than rescanned per poll.
func (s *Server) handleViolations(w http.ResponseWriter, r *http.Request) {
	id, entry, err := s.session(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	entry.mu.Lock()
	if err := s.ensureLive(id, entry); err != nil {
		entry.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	vs, err := entry.sess.Violations()
	entry.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := violationsResponse{Consistent: len(vs) == 0, Violations: []violationJSON{}}
	for _, v := range vs {
		resp.Violations = append(resp.Violations, violationJSON{
			Constraint: v.Constraint.ID, Row1: v.Row1 + 1, Row2: v.Row2 + 1,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

type explainRequest struct {
	// Cell is the cell of interest in paper notation, e.g. "t5[Country]".
	Cell string `json:"cell"`
	// Kind selects the report: "constraints" (default), "cells",
	// "cells-topk", "rows", "columns", "interaction" or "toward".
	Kind string `json:"kind"`
	// Samples is the sampling budget for cell-based kinds.
	Samples int `json:"samples"`
	// Seed makes sampled reports reproducible.
	Seed int64 `json:"seed"`
	// K is the cutoff for "cells-topk" (default 5).
	K int `json:"k"`
	// Desired is the hypothetical value for "toward" (why-not analysis).
	Desired string `json:"desired"`
}

type explainResponse struct {
	Cell      string       `json:"cell"`
	Target    string       `json:"target"`
	Kind      string       `json:"kind"`
	Algorithm string       `json:"algorithm"`
	Entries   []core.Entry `json:"entries"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	id, entry, err := s.session(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	release, ok := s.admit()
	if !ok {
		reject429(w)
		return
	}
	defer release()
	// The derived context is cancelled when this handler returns, so a
	// timed-out or abandoned request releases its sampler workers instead
	// of computing into the void (TestTimeoutReleasesWorkers).
	ctx, cancel := s.reqContext(r)
	defer cancel()
	entry.mu.Lock()
	defer entry.mu.Unlock()
	defer s.guard(w, id, entry)()
	if checkQuarantine(w, entry) {
		return
	}
	if err := s.ensureLive(id, entry); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess := entry.sess
	cell, err := sess.Dirty().ParseRefName(req.Cell)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	exp := sess.Explainer()
	samples := req.Samples
	if samples <= 0 {
		samples = s.ExplainSamples
	}
	var report *core.Report
	switch req.Kind {
	case "", "constraints":
		report, err = exp.ExplainConstraints(ctx, cell)
	case "cells":
		report, err = exp.ExplainCells(ctx, cell, core.CellExplainOptions{
			Samples: samples,
			Seed:    req.Seed,
			Workers: s.Workers,
		})
	case "cells-topk":
		k := req.K
		if k <= 0 {
			k = 5
		}
		report, _, err = exp.ExplainCellsTopK(ctx, cell, k, core.CellExplainOptions{
			Samples: samples,
			Seed:    req.Seed,
			Workers: s.Workers,
		})
	case "rows", "columns":
		groups := exp.RowGroups(cell)
		if req.Kind == "columns" {
			groups = exp.ColumnGroups(cell)
		}
		// Exact when feasible; the request's sampling budget and seed apply
		// to the fallback.
		report, err = exp.ExplainCellGroupsAuto(ctx, cell, groups, core.CellExplainOptions{
			Samples: samples,
			Seed:    req.Seed,
			Workers: s.Workers,
		})
	case "toward":
		if req.Desired == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("kind toward needs a desired value"))
			return
		}
		report, err = exp.ExplainToward(ctx, cell, table.ParseValue(req.Desired))
	case "interaction":
		inter, ierr := exp.ExplainConstraintInteractions(ctx, cell)
		if ierr != nil {
			err = ierr
			break
		}
		report = &core.Report{Kind: "interaction", Cell: inter.Cell, Target: inter.Target, Algorithm: inter.Algorithm}
		for _, p := range inter.Pairs {
			report.Entries = append(report.Entries, core.Entry{Name: "I(" + p.A + "," + p.B + ")", Shapley: p.Value})
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown kind %q", req.Kind))
		return
	}
	if err != nil {
		if ctx.Err() != nil {
			writeError(w, http.StatusRequestTimeout, err)
			return
		}
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{
		Cell: report.Cell, Target: report.Target, Kind: report.Kind,
		Algorithm: report.Algorithm, Entries: report.Entries,
	})
}

type editRequest struct {
	// SetCell + Value edit one table cell (paper notation).
	SetCell string `json:"setCell"`
	Value   string `json:"value"`
	// InsertRow appends one row; fields are parsed like CSV cells.
	InsertRow []string `json:"insertRow"`
	// DeleteRow removes one row by 1-based index (matching the tuple
	// numbering of violations and cell notation). The table's swap-delete
	// rule applies: the last row takes the vacated index, and the session
	// history line names the remap.
	DeleteRow *int `json:"deleteRow"`
	// Batch applies several ops under one table generation.
	Batch []batchOpJSON `json:"batch"`
	// RemoveDC removes a constraint by ID.
	RemoveDC string `json:"removeDC"`
	// AddDC parses and adds a constraint.
	AddDC string `json:"addDC"`
}

// batchOpJSON is one wire-form batch operation. Rows are 1-based and
// address the table as it stands when the op runs (earlier ops in the
// same batch shift them); columns go by attribute name, so a set can
// target a row inserted earlier in the same batch, which the t<row>[...]
// parser (bounds-checked against the pre-batch table) could not express.
type batchOpJSON struct {
	Op     string   `json:"op"`               // "set", "insert" or "delete"
	Row    int      `json:"row,omitempty"`    // set, delete: 1-based row
	Col    string   `json:"col,omitempty"`    // set: attribute name
	Value  string   `json:"value,omitempty"`  // set: new value
	Values []string `json:"values,omitempty"` // insert: the new row's fields
}

// batchOps converts the wire ops into core batch ops; bounds are
// validated by Session.ApplyBatch against the simulated row count.
func batchOps(sess *core.Session, ops []batchOpJSON) ([]core.BatchOp, error) {
	out := make([]core.BatchOp, 0, len(ops))
	for i, op := range ops {
		switch op.Op {
		case string(core.BatchSet):
			col, ok := sess.Dirty().Schema().Index(op.Col)
			if !ok {
				return nil, fmt.Errorf("batch op %d: no attribute %q", i, op.Col)
			}
			out = append(out, core.BatchOp{
				Kind:  core.BatchSet,
				Ref:   table.CellRef{Row: op.Row - 1, Col: col},
				Value: table.ParseValue(op.Value),
			})
		case string(core.BatchInsert):
			vals := make([]table.Value, len(op.Values))
			for j, f := range op.Values {
				vals[j] = table.ParseValue(f)
			}
			out = append(out, core.BatchOp{Kind: core.BatchInsert, Vals: vals})
		case string(core.BatchDelete):
			out = append(out, core.BatchOp{Kind: core.BatchDelete, Row: op.Row - 1})
		default:
			return nil, fmt.Errorf("batch op %d: unknown op %q", i, op.Op)
		}
	}
	return out, nil
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	id, entry, err := s.session(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var req editRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	entry.mu.Lock()
	defer entry.mu.Unlock()
	defer s.guard(w, id, entry)()
	if checkQuarantine(w, entry) {
		return
	}
	if err := s.ensureLive(id, entry); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess := entry.sess
	switch {
	case req.SetCell != "":
		ref, err := sess.Dirty().ParseRefName(req.SetCell)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := sess.SetCell(ref, table.ParseValue(req.Value)); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.InsertRow != nil:
		vals := make([]table.Value, len(req.InsertRow))
		for j, f := range req.InsertRow {
			vals[j] = table.ParseValue(f)
		}
		if err := sess.InsertRow(vals); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.DeleteRow != nil:
		if err := sess.DeleteRow(*req.DeleteRow - 1); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.Batch != nil:
		ops, err := batchOps(sess, req.Batch)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := sess.ApplyBatch(ops); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.RemoveDC != "":
		if err := sess.RemoveDC(req.RemoveDC); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.AddDC != "":
		if err := sess.AddDC(req.AddDC); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty edit"))
		return
	}
	writeJSON(w, http.StatusOK, s.sessionJSON(id, sess))
}

type ingestResponse struct {
	Appended int         `json:"appended"`
	Session  sessionJSON `json:"session"`
}

// handleIngest streams a raw CSV request body (header matching the
// session schema, then data rows) into the session's dirty table as one
// batch bracket: rows are decoded and appended straight off the wire
// without buffering the document, the whole ingest shares one table
// generation, and incremental consumers replay it as a single structural
// delta. MaxBodyBytes still bounds the stream (limitBody wraps every
// route). A mid-stream decode error leaves the already-appended prefix
// applied — the response is an error, but the appended count in the
// session history records the partial ingest.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	id, entry, err := s.session(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	entry.mu.Lock()
	defer entry.mu.Unlock()
	defer s.guard(w, id, entry)()
	if checkQuarantine(w, entry) {
		return
	}
	if err := s.ensureLive(id, entry); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess := entry.sess
	n, err := sess.IngestCSV(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("after %d rows: %w", n, err))
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Appended: n, Session: s.sessionJSON(id, sess)})
}

// ListenAndServe runs the server until the context is cancelled, then
// drains: it stops accepting, gives in-flight requests drainTimeout to
// finish (their computation contexts are cancelled with the base context,
// so cooperative cancellation ends them promptly), snapshots every live
// session to the spool, and returns nil — the clean-exit half of the
// SIGTERM contract (cmd/trex-server turns that nil into exit code 0).
//
// The listener carries conservative timeouts so one slow or stuck client
// cannot pin a connection forever: header reads, whole-request reads and
// idle keep-alives are each bounded.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
		// Request handlers observe the serve context: Shutdown cancels it
		// after the drain deadline, releasing any still-running computation.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	if err := s.LoadSpool(); err != nil {
		return fmt.Errorf("loading spool: %w", err)
	}
	errCh := make(chan error, 1)
	//lint:allow ctxflow the listener goroutine is reaped through ctx.Done below: Shutdown/Close unblock ListenAndServe
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			// Deadline hit: force-close the stragglers; their computations
			// die with the base context. Drain still runs — idle sessions
			// must not lose state because one request hung.
			_ = srv.Close()
		}
		return s.Drain()
	}
}
