package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestWorkersConfigDeterminism: two servers with different engine
// parallelism must serve bit-identical explanations for identical
// requests — the end-to-end form of the fan-out and parallel-repair
// determinism contracts.
func TestWorkersConfigDeterminism(t *testing.T) {
	const csv = "League,Team,City,Country\nA,a1,x,P\nA,a2,x,P\nA,a3,x,Q\nB,b1,y,R\nB,b2,y,R\nB,b3,y,R\n"
	const dcs = "C1: !(t1.League = t2.League & t1.Country != t2.Country)"
	explain := func(workers int) string {
		s := New()
		s.Workers = workers
		h := s.Handler()
		body, _ := json.Marshal(map[string]string{"csv": csv, "dcs": dcs, "algorithm": "fd-chase"})
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/session", bytes.NewReader(body)))
		if rec.Code != 200 {
			t.Fatalf("workers=%d: create: %d %s", workers, rec.Code, rec.Body)
		}
		var sess struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &sess); err != nil {
			t.Fatal(err)
		}
		req, _ := json.Marshal(map[string]any{"cell": "t3[Country]", "kind": "cells", "samples": 24, "seed": 7})
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/session/"+sess.ID+"/explain", bytes.NewReader(req)))
		if rec.Code != 200 {
			t.Fatalf("workers=%d: explain: %d %s", workers, rec.Code, rec.Body)
		}
		return rec.Body.String()
	}
	serial := explain(1)
	parallel := explain(4)
	if serial != parallel {
		t.Fatalf("explanations diverge across worker configs:\nworkers=1: %s\nworkers=4: %s", serial, parallel)
	}
}
