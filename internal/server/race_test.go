package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// raceCSV is a small soccer-schema instance with one dirty cell, cheap
// enough to repair and explain hundreds of times under the race detector.
// It uses the paper's schema so the fixed rule set of the registry's
// algorithm1 applies.
const raceCSV = "Team,City,Country,League,Year,Place\n" +
	"Real,Madrid,Spain,La Liga,2019,1\n" +
	"Real,Capital,Spain,La Liga,2018,1\n" +
	"Real,Madrid,Spain,La Liga,2017,2\n" +
	"Betis,Sevilla,Spain,La Liga,2019,3\n"

const raceDCs = "C1: !(t1.Team = t2.Team & t1.City != t2.City)\n" +
	"C2: !(t1.City = t2.City & t1.Country != t2.Country)"

func raceDo(t *testing.T, client *http.Client, method, url string, body any) *http.Response {
	t.Helper()
	var reader *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(raw)
	} else {
		reader = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServerConcurrentSessions hammers parallel /repair + /explain + /edit
// traffic across several sessions that share the repair.All(1) registry,
// plus /algorithms and session creation churn. Run under -race (the CI
// race job does) it proves the per-session locking and the pooled
// per-run repair state are sound; without -race it still exercises the
// locking for deadlocks and non-2xx responses.
func TestServerConcurrentSessions(t *testing.T) {
	srv := New()
	srv.ExplainSamples = 4 // keep explains cheap; we are testing safety, not accuracy
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Every production algorithm from the shared registry gets a session,
	// plus a second session on the same algorithm to share pooled state.
	algs := []string{"algorithm1", "holosim", "greedy-holistic", "fd-chase", "algorithm1"}
	ids := make([]string, len(algs))
	for i, alg := range algs {
		resp := raceDo(t, client, http.MethodPost, ts.URL+"/api/session", map[string]string{
			"csv": raceCSV, "dcs": raceDCs, "algorithm": alg,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create session (%s): status %d", alg, resp.StatusCode)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids[i] = out.ID
	}

	const perSession = 8
	var wg sync.WaitGroup
	errs := make(chan string, len(ids)*perSession*4)
	for w, id := range ids {
		wg.Add(1)
		go func(w int, id string) {
			defer wg.Done()
			base := ts.URL + "/api/session/" + id
			for i := 0; i < perSession; i++ {
				// Edit: flip the dirty cell back and forth so repairs and
				// explains race genuine table mutations.
				resp := raceDo(t, client, http.MethodPost, base+"/edit", map[string]string{
					"setCell": "t2[City]", "value": []string{"Capital", "Centro", "Madrid"}[(w+i)%3],
				})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("edit: status %d", resp.StatusCode)
				}
				resp.Body.Close()

				resp = raceDo(t, client, http.MethodPost, base+"/repair", nil)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("repair: status %d", resp.StatusCode)
				}
				resp.Body.Close()

				resp = raceDo(t, client, http.MethodPost, base+"/explain", map[string]any{
					"cell": "t2[City]", "kind": "constraints",
				})
				// 422 is legitimate: a concurrent edit may have made the
				// cell clean, leaving nothing to explain.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
					errs <- fmt.Sprintf("explain: status %d", resp.StatusCode)
				}
				resp.Body.Close()

				resp = raceDo(t, client, http.MethodGet, ts.URL+"/api/algorithms", nil)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("algorithms: status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w, id)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestAlgorithmsSorted pins the deterministic dropdown order (sort.Strings
// replaced a hand-rolled insertion sort).
func TestAlgorithmsSorted(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/api/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Algorithms []string `json:"algorithms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	want := []string{"algorithm1", "fd-chase", "greedy-holistic", "holosim"}
	if strings.Join(out.Algorithms, ",") != strings.Join(want, ",") {
		t.Fatalf("algorithms = %v, want %v", out.Algorithms, want)
	}
}
