package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// TxnBracket enforces the PR 6 cache-transaction bracket: every exported
// context-taking entry point on core.Explainer stages its cache writes in
// a transaction that commits only on success, via
//
//	defer e.finishEntry(e.begin(), &err)
//
// as the first statement, with err the named error result. An entry point
// missing the bracket publishes partial work into the session's shared
// caches on cancellation/panic — exactly the poisoning the fault model
// forbids ("no-partial-work-poisoning", doc.go).
//
// A method whose whole body is `return e.OtherMethod(...)` delegates to a
// bracketed entry point and is exempt; anything else needs the bracket or
// a //lint:allow txnbracket <reason> (e.g. a read-only path that provably
// never stages).
var TxnBracket = &analysis.Analyzer{
	Name: "txnbracket",
	Doc: "require `defer e.finishEntry(e.begin(), &err)` as the first " +
		"statement of every exported context-taking core.Explainer method, " +
		"so shared-cache writes stay transactional",
	Run: runTxnBracket,
}

func runTxnBracket(pass *analysis.Pass) (any, error) {
	if !pathHasSuffix(pass.Pkg.Path(), "internal/core") {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := recvIdent(fd)
			if recv == nil || !isNamedType(pass.TypesInfo.TypeOf(recv), "internal/core", "Explainer") {
				continue
			}
			if !hasContextParam(pass, fd) {
				continue
			}
			if isDelegation(fd, recv) || hasBracket(pass, fd, recv) {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "exported Explainer entry point %s takes a context but does not open with `defer %s.finishEntry(%s.begin(), &err)`; without the bracket an aborted run poisons the session's shared caches", fd.Name.Name, recv.Name, recv.Name)
		}
	}
	return nil, nil
}

// hasContextParam reports whether the declaration has a context.Context
// parameter — the mechanical marker of an engine-touching entry point.
func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}

// isDelegation reports whether the body is exactly `return recv.Method(...)`
// — a thin wrapper over another (itself checked) entry point.
func isDelegation(fd *ast.FuncDecl, recv *ast.Ident) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && base.Name == recv.Name
}

// hasBracket reports whether the first statement is the canonical
// `defer recv.finishEntry(recv.begin(), &err)` with err a named error
// result of this function.
func hasBracket(pass *analysis.Pass, fd *ast.FuncDecl, recv *ast.Ident) bool {
	if len(fd.Body.List) == 0 {
		return false
	}
	def, ok := fd.Body.List[0].(*ast.DeferStmt)
	if !ok || len(def.Call.Args) != 2 {
		return false
	}
	if !isRecvMethodCall(def.Call.Fun, recv, "finishEntry") {
		return false
	}
	inner, ok := ast.Unparen(def.Call.Args[0]).(*ast.CallExpr)
	if !ok || len(inner.Args) != 0 || !isRecvMethodCall(inner.Fun, recv, "begin") {
		return false
	}
	addr, ok := ast.Unparen(def.Call.Args[1]).(*ast.UnaryExpr)
	if !ok {
		return false
	}
	errID, ok := ast.Unparen(addr.X).(*ast.Ident)
	if !ok {
		return false
	}
	return isNamedErrorResult(fd, errID.Name)
}

// isRecvMethodCall reports whether fun is `recv.name`.
func isRecvMethodCall(fun ast.Expr, recv *ast.Ident, name string) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && base.Name == recv.Name
}

// isNamedErrorResult reports whether the declaration names a result `name`
// of type error.
func isNamedErrorResult(fd *ast.FuncDecl, name string) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		id, ok := field.Type.(*ast.Ident)
		if !ok || id.Name != "error" {
			continue
		}
		for _, n := range field.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}
