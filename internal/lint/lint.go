package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// directiveAnalyzer is the pseudo-analyzer name under which malformed
// //lint:allow directives are reported. A suppression that cannot be
// parsed must itself fail the build, or a typo silently re-enables the
// finding it meant to justify away.
const directiveAnalyzer = "lintdirective"

// Analyzers returns the full trexlint suite in stable (alphabetical)
// order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{AllocFree, CacheInval, CacheKey, CtxFlow, DetMap, EditLog, LockOrder, SeededRand, TxnBracket}
}

// Finding is one diagnostic. Allowed marks findings covered by a
// //lint:allow directive: they fail nothing but stay visible to -json
// consumers, so suppression density is auditable.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Allowed  bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunPackage runs the analyzers over one loaded package, applying
// //lint:allow suppression, and returns the surviving findings sorted by
// position.
func RunPackage(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	all, err := RunPackageAll(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	return activeOnly(all), nil
}

// RunPackageAll is RunPackage keeping the allowed findings too (marked
// Allowed), for -json consumers that audit suppressions.
//
// _test.go files are skipped: the invariants bind engine code, and the
// behaviors they protect (fan-out determinism, edit-log integrity) are
// asserted directly by the tests themselves. Skipping here also keeps the
// vet-tool mode — whose compilation units include test files — consistent
// with the standalone loader, which never sees them.
//
// After every analyzer has reported, //lint:allow directives that
// suppressed nothing are themselves reported (under the lintdirective
// pseudo-analyzer): a stale suppression is a latent hole for whatever
// lands on its line next.
func RunPackageAll(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	files := pkg.Files
	var kept []*ast.File
	for _, f := range files {
		if strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}
	files = kept
	pkg = &loader.Package{
		Path: pkg.Path, Name: pkg.Name, Dir: pkg.Dir,
		Fset: pkg.Fset, Files: files, Types: pkg.Types, Info: pkg.Info,
	}
	sup := analysis.CollectSuppressions(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, d := range sup.Malformed() {
		findings = append(findings, Finding{
			Analyzer: directiveAnalyzer,
			Pos:      pkg.Fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
				Allowed:  sup.Suppressed(pkg.Fset, a.Name, d.Pos),
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := map[string]bool{directiveAnalyzer: true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for n := range ran {
		known[n] = true
	}
	for _, d := range sup.Stale(ran, known) {
		findings = append(findings, Finding{
			Analyzer: directiveAnalyzer,
			Pos:      pkg.Fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	sortFindings(findings)
	return findings, nil
}

// Run runs the analyzers over every package and returns all surviving
// findings sorted by position.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	all, err := RunAll(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return activeOnly(all), nil
}

// RunAll is Run keeping allowed findings (see RunPackageAll).
func RunAll(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackageAll(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

// activeOnly filters out allowed findings.
func activeOnly(all []Finding) []Finding {
	var active []Finding
	for _, f := range all {
		if !f.Allowed {
			active = append(active, f)
		}
	}
	return active
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
