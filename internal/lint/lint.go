package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// directiveAnalyzer is the pseudo-analyzer name under which malformed
// //lint:allow directives are reported. A suppression that cannot be
// parsed must itself fail the build, or a typo silently re-enables the
// finding it meant to justify away.
const directiveAnalyzer = "lintdirective"

// Analyzers returns the full trexlint suite in stable (alphabetical)
// order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{CacheKey, DetMap, EditLog, SeededRand, TxnBracket}
}

// Finding is one unsuppressed diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunPackage runs the analyzers over one loaded package, applying
// //lint:allow suppression, and returns the surviving findings sorted by
// position.
//
// _test.go files are skipped: the invariants bind engine code, and the
// behaviors they protect (fan-out determinism, edit-log integrity) are
// asserted directly by the tests themselves. Skipping here also keeps the
// vet-tool mode — whose compilation units include test files — consistent
// with the standalone loader, which never sees them.
func RunPackage(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	files := pkg.Files
	var kept []*ast.File
	for _, f := range files {
		if strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}
	files = kept
	pkg = &loader.Package{
		Path: pkg.Path, Name: pkg.Name, Dir: pkg.Dir,
		Fset: pkg.Fset, Files: files, Types: pkg.Types, Info: pkg.Info,
	}
	sup := analysis.CollectSuppressions(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, d := range sup.Malformed() {
		findings = append(findings, Finding{
			Analyzer: directiveAnalyzer,
			Pos:      pkg.Fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if sup.Suppressed(pkg.Fset, a.Name, d.Pos) {
				return
			}
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sortFindings(findings)
	return findings, nil
}

// Run runs the analyzers over every package and returns all surviving
// findings sorted by position.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
