// Package dataflow is the bounded call-graph summarizer under the
// flow-sensitive trexlint analyzers: it builds static call edges from
// go/types information for one type-checked package and memoizes a
// per-function Summary of the three fact families the analyzers consume —
//
//   - allocates: the body contains an allocation site (make, new, &T{},
//     slice/map literal, or a closure literal);
//   - acquires/releases: which mutexes the body locks and unlocks, as
//     stable (package.Type.field) labels;
//   - mutates/invalidates: whether the body writes table storage or the
//     session constraint set, and whether it calls into the cache
//     invalidation surface (Table.logEdit / Table.invalidateEdits /
//     Engine.InvalidateCache).
//
// Summaries are intraprocedural facts; the Transitive* queries propagate
// them over static call edges to a bounded depth. Edges resolve only
// callees whose bodies are in the analyzed package — cross-package calls
// are recorded but dead-end (trexlint analyzes each package against the
// invariants its own code must uphold; entry points of other packages are
// rooted and checked in their own package's run). Calls through function
// values and interface methods are unresolved for the same reason:
// summaries stay sound for the static call structure, and the runtime
// suites remain the backstop for dynamic dispatch.
//
// Closure bodies (*ast.FuncLit) are attributed to their enclosing
// declaration: a lock acquired or a context polled inside a closure
// counts as the declaring function's behavior, matching how the hot
// paths use closures (deferred cleanups, pooled constructors, worker
// bodies).
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DefaultDepth bounds every transitive query: deep enough for the
// repository's call chains (the eval→repair path is < 10 frames per
// package), small enough that accidental recursion cannot blow up.
const DefaultDepth = 32

// Acquire is one direct mutex acquisition site.
type Acquire struct {
	// Label identifies the mutex as package.Type.field (for struct
	// fields), package.var (package-level mutexes) or local:name
	// (function-local mutexes).
	Label string
	// Pos is the Lock/RLock call site.
	Pos token.Pos
	// Read distinguishes RLock from Lock.
	Read bool
}

// Summary carries one function's direct (intraprocedural) facts.
type Summary struct {
	// Allocates reports an allocation site anywhere in the body.
	Allocates bool
	// Acquires and Releases are the body's mutex operations in source
	// order (closures included); a Release's Read field marks RUnlock.
	Acquires []Acquire
	Releases []Acquire
	// MutatesTable reports a direct write into table.Table row storage;
	// MutatesDCSet a direct write to a core.Session constraint-set field.
	MutatesTable bool
	MutatesDCSet bool
	// Invalidates reports a direct call into the invalidation surface.
	Invalidates bool
	// RefreshesPlan reports a direct call into the constraint-set plan
	// refresh surface (Session.refreshPlan / PlanCache.Clear).
	RefreshesPlan bool
	// PollsCtx reports that the body consults a context.Context — calls
	// Err/Done/Deadline/Value on one, or passes one onward to a callee.
	PollsCtx bool
	// Calls lists the statically resolved callees in source order,
	// deduplicated.
	Calls []*types.Func
}

// Graph is the call graph plus summary store of one package.
type Graph struct {
	Fset *token.FileSet
	Info *types.Info
	Pkg  *types.Package

	decls     map[*types.Func]*ast.FuncDecl
	declOrder []*types.Func
	summaries map[*types.Func]*Summary
}

// Build scans the package's files and constructs the call graph. All
// facts are computed eagerly per function (one AST walk each); transitive
// queries memoize on top.
func Build(fset *token.FileSet, files []*ast.File, info *types.Info, pkg *types.Package) *Graph {
	g := &Graph{
		Fset:      fset,
		Info:      info,
		Pkg:       pkg,
		decls:     make(map[*types.Func]*ast.FuncDecl),
		summaries: make(map[*types.Func]*Summary),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
			g.declOrder = append(g.declOrder, fn)
		}
	}
	for _, fn := range g.declOrder {
		g.summaries[fn] = g.summarize(g.decls[fn])
	}
	return g
}

// Funcs returns the package's declared functions in source order.
func (g *Graph) Funcs() []*types.Func { return g.declOrder }

// DeclOf returns the declaration of fn, nil when fn has no body in this
// package.
func (g *Graph) DeclOf(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// SummaryOf returns fn's direct summary, nil for functions without a
// body in this package.
func (g *Graph) SummaryOf(fn *types.Func) *Summary { return g.summaries[fn] }

// summarize computes the direct facts of one declaration.
func (g *Graph) summarize(fd *ast.FuncDecl) *Summary {
	s := &Summary{}
	seenCall := make(map[*types.Func]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			g.summarizeCall(s, seenCall, n)
		case *ast.FuncLit:
			s.Allocates = true
		case *ast.CompositeLit:
			s.Allocates = true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				s.Allocates = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				g.summarizeWrite(s, lhs)
			}
		}
		return true
	})
	return s
}

// summarizeCall classifies one call expression into the summary.
func (g *Graph) summarizeCall(s *Summary, seen map[*types.Func]bool, call *ast.CallExpr) {
	// Builtin allocators.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := g.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "make" || b.Name() == "new" {
				s.Allocates = true
			}
			return
		}
	}
	fn := g.calledFunc(call)
	if fn == nil {
		// A call through a function value still forwards a context if one
		// is among the arguments.
		if g.passesCtx(call) {
			s.PollsCtx = true
		}
		return
	}
	switch {
	case isMutexMethod(fn, "Lock"), isMutexMethod(fn, "RLock"):
		if label, ok := g.lockLabel(call); ok {
			s.Acquires = append(s.Acquires, Acquire{Label: label, Pos: call.Pos(), Read: fn.Name() == "RLock"})
		}
		return
	case isMutexMethod(fn, "Unlock"), isMutexMethod(fn, "RUnlock"):
		if label, ok := g.lockLabel(call); ok {
			s.Releases = append(s.Releases, Acquire{Label: label, Pos: call.Pos(), Read: fn.Name() == "RUnlock"})
		}
		return
	}
	if isCtxMethod(fn) {
		s.PollsCtx = true
	}
	if g.passesCtx(call) {
		s.PollsCtx = true
	}
	if isInvalidationEntry(fn) {
		s.Invalidates = true
	}
	if isPlanRefreshEntry(fn) {
		s.RefreshesPlan = true
	}
	if !seen[fn] {
		seen[fn] = true
		s.Calls = append(s.Calls, fn)
	}
}

// summarizeWrite classifies one assignment LHS.
func (g *Graph) summarizeWrite(s *Summary, lhs ast.Expr) {
	base := lhs
	for {
		if idx, ok := ast.Unparen(base).(*ast.IndexExpr); ok {
			base = idx.X
			continue
		}
		break
	}
	sel, ok := ast.Unparen(base).(*ast.SelectorExpr)
	if !ok {
		return
	}
	owner := g.Info.TypeOf(sel.X)
	switch {
	case sel.Sel.Name == "rows" && isNamed(owner, "internal/table", "Table"):
		// Indexed writes into row storage (t.rows[i][j] = v, t.rows[i] =
		// row) and structural re-slicing (t.rows = ...) alike.
		s.MutatesTable = true
	case (sel.Sel.Name == "dcs" || sel.Sel.Name == "alg") && isNamed(owner, "internal/core", "Session"):
		s.MutatesDCSet = true
	}
}

// isNamed reports whether t (through pointers and aliases) is the named
// type pkgSuffix.name.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == name && n.Obj().Pkg() != nil &&
		pathHasSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

// calledFunc resolves the static callee of a call, nil for builtins,
// conversions and dynamic calls.
func (g *Graph) calledFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := g.Info.Uses[id].(*types.Func)
	return fn
}

// passesCtx reports whether any argument of call has context.Context type.
func (g *Graph) passesCtx(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextType(g.Info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// lockLabel derives the stable label of the mutex a Lock/Unlock call
// operates on: the receiver expression with field owners resolved to
// their named types.
func (g *Graph) lockLabel(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return g.labelExpr(sel.X)
}

// labelExpr renders the mutex-valued expression as a label.
func (g *Graph) labelExpr(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := g.Info.ObjectOf(e)
		if obj == nil {
			return "", false
		}
		if obj.Parent() == g.Pkg.Scope() {
			return g.Pkg.Name() + "." + e.Name, true
		}
		return "local:" + e.Name, true
	case *ast.SelectorExpr:
		// field access: label by the owning named type when it has one,
		// recursing outward through anonymous owners.
		if owner := namedOf(g.Info.TypeOf(e.X)); owner != nil {
			pkgName := g.Pkg.Name()
			if p := owner.Obj().Pkg(); p != nil {
				pkgName = p.Name()
			}
			return pkgName + "." + owner.Obj().Name() + "." + e.Sel.Name, true
		}
		if outer, ok := g.labelExpr(e.X); ok {
			return outer + "." + e.Sel.Name, true
		}
		return "", false
	case *ast.IndexExpr:
		// shard arrays: c.shards[i].mu labels by the element's owner type,
		// which the SelectorExpr case above already resolves; a direct
		// index of a mutex array labels by the array expression.
		return g.labelExpr(e.X)
	default:
		return "", false
	}
}

// Reachable returns the set of declared functions reachable from roots
// over static call edges within maxDepth calls (roots are at depth 0 and
// always included when declared in the package).
func (g *Graph) Reachable(roots []*types.Func, maxDepth int) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	type item struct {
		fn    *types.Func
		depth int
	}
	var queue []item
	for _, r := range roots {
		if g.decls[r] != nil && !reach[r] {
			reach[r] = true
			queue = append(queue, item{r, 0})
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.depth >= maxDepth {
			continue
		}
		for _, callee := range g.summaries[it.fn].Calls {
			if g.decls[callee] != nil && !reach[callee] {
				reach[callee] = true
				queue = append(queue, item{callee, it.depth + 1})
			}
		}
	}
	return reach
}

// TransitiveAcquires returns the sorted set of mutex labels fn may
// acquire, directly or through same-package callees within maxDepth.
func (g *Graph) TransitiveAcquires(fn *types.Func, maxDepth int) []string {
	set := make(map[string]bool)
	g.collectAcquires(fn, maxDepth, set, make(map[*types.Func]bool))
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func (g *Graph) collectAcquires(fn *types.Func, depth int, set map[string]bool, visiting map[*types.Func]bool) {
	s := g.summaries[fn]
	if s == nil || visiting[fn] {
		return
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	for _, a := range s.Acquires {
		set[a.Label] = true
	}
	if depth <= 0 {
		return
	}
	for _, callee := range s.Calls {
		g.collectAcquires(callee, depth-1, set, visiting)
	}
}

// boolFact propagates a direct boolean fact over call edges.
func (g *Graph) boolFact(fn *types.Func, depth int, direct func(*Summary) bool, visiting map[*types.Func]bool) bool {
	s := g.summaries[fn]
	if s == nil || visiting[fn] {
		return false
	}
	if direct(s) {
		return true
	}
	if depth <= 0 {
		return false
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	for _, callee := range s.Calls {
		if g.boolFact(callee, depth-1, direct, visiting) {
			return true
		}
	}
	return false
}

// Mutates reports whether fn may write table storage or the session
// constraint set, directly or through same-package callees.
func (g *Graph) Mutates(fn *types.Func, maxDepth int) bool {
	return g.boolFact(fn, maxDepth, func(s *Summary) bool { return s.MutatesTable || s.MutatesDCSet }, make(map[*types.Func]bool))
}

// Invalidates reports whether fn may call into the invalidation surface,
// directly or through same-package callees.
func (g *Graph) Invalidates(fn *types.Func, maxDepth int) bool {
	return g.boolFact(fn, maxDepth, func(s *Summary) bool { return s.Invalidates }, make(map[*types.Func]bool))
}

// RefreshesPlan reports whether fn may call into the plan refresh
// surface, directly or through same-package callees.
func (g *Graph) RefreshesPlan(fn *types.Func, maxDepth int) bool {
	return g.boolFact(fn, maxDepth, func(s *Summary) bool { return s.RefreshesPlan }, make(map[*types.Func]bool))
}

// PollsCtx reports whether fn may consult a context, directly or through
// same-package callees.
func (g *Graph) PollsCtx(fn *types.Func, maxDepth int) bool {
	return g.boolFact(fn, maxDepth, func(s *Summary) bool { return s.PollsCtx }, make(map[*types.Func]bool))
}

// isMutexMethod reports whether fn is (*sync.Mutex or *sync.RWMutex).name.
func isMutexMethod(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isCtxMethod reports whether fn is one of context.Context's methods.
func isCtxMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Err", "Done", "Deadline", "Value":
		return isContextType(sig.Recv().Type())
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isInvalidationEntry reports whether fn is part of the cache
// invalidation surface: the table edit log's internal entry points or
// the engine-level descriptor invalidation.
func isInvalidationEntry(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := namedOf(sig.Recv().Type())
	if recv == nil || recv.Obj().Pkg() == nil {
		return false
	}
	path, owner := recv.Obj().Pkg().Path(), recv.Obj().Name()
	switch fn.Name() {
	case "logEdit", "logStructural", "invalidateEdits":
		return owner == "Table" && pathHasSuffix(path, "internal/table")
	case "InvalidateCache":
		return owner == "Engine" && pathHasSuffix(path, "internal/exec")
	}
	return false
}

// isPlanRefreshEntry reports whether fn is part of the constraint-set
// plan refresh surface: the session-level recompilation or the engine
// plan cache's wholesale drop. Deliberately narrower than the cache
// invalidation surface — Engine.InvalidateCache clears the *cache* but
// leaves a session's compiled plan pointer stale, so only an explicit
// refresh counts.
func isPlanRefreshEntry(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := namedOf(sig.Recv().Type())
	if recv == nil || recv.Obj().Pkg() == nil {
		return false
	}
	path, owner := recv.Obj().Pkg().Path(), recv.Obj().Name()
	switch fn.Name() {
	case "refreshPlan":
		return owner == "Session" && pathHasSuffix(path, "internal/core")
	case "Clear":
		return owner == "PlanCache" && pathHasSuffix(path, "internal/exec")
	}
	return false
}

// namedOf strips pointers and aliases down to the named type, nil when
// there is none.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// pathHasSuffix matches pkgPath against suffix at a path-segment
// boundary (mirrors the lint package's scope matching, so testdata
// packages exercise the same rules).
func pathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}
