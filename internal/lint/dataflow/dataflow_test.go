package dataflow_test

import (
	"go/types"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro/internal/lint/dataflow"
	"repro/internal/lint/loader"
)

// tableSrc is a synthetic package on the guarded internal/table path
// suffix, exercising every direct fact family.
const tableSrc = `package table

import (
	"context"
	"sync"
)

type Value struct{}

type Table struct {
	mu   sync.RWMutex
	rows [][]Value
}

func (t *Table) logEdit(i, j int) {}

func (t *Table) Set(i, j int, v Value) {
	t.rows[i][j] = v
	t.logEdit(i, j)
}

func (t *Table) Swap(rows [][]Value) { t.rows = rows }

func MutWrap(t *Table, v Value) { t.Set(0, 0, v) }

func Alloc(n int) []int { return make([]int, n) }

func Clean(x int) int { return x + 1 }

var global sync.Mutex

func LockBoth(t *Table) {
	global.Lock()
	t.mu.RLock()
	t.mu.RUnlock()
	global.Unlock()
}

func LocalLock() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

func ClosureLock(t *Table) {
	f := func() {
		t.mu.Lock()
		t.mu.Unlock()
	}
	f()
}

func Poll(ctx context.Context) bool { return ctx.Err() != nil }

func Delegate(ctx context.Context) bool { return Poll(ctx) }

func chainA(t *Table) { chainB(t) }
func chainB(t *Table) { chainC(t) }
func chainC(t *Table) {
	t.mu.Lock()
	t.mu.Unlock()
}
`

func buildGraph(t *testing.T, pkgPath, src string, deps ...string) *dataflow.Graph {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, pkgPath, deps...)
	if err != nil {
		t.Fatal(err)
	}
	return dataflow.Build(pkg.Fset, pkg.Files, pkg.Info, pkg.Types)
}

func fnByName(t *testing.T, g *dataflow.Graph, name string) *types.Func {
	t.Helper()
	for _, fn := range g.Funcs() {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("function %s not declared in graph", name)
	return nil
}

func labels(acquires []dataflow.Acquire) []string {
	out := make([]string, len(acquires))
	for i, a := range acquires {
		out[i] = a.Label
	}
	return out
}

func TestSummaryDirectFacts(t *testing.T) {
	g := buildGraph(t, "dfdata/internal/table", tableSrc, "sync", "context")

	clean := g.SummaryOf(fnByName(t, g, "Clean"))
	if clean.Allocates || clean.MutatesTable || clean.MutatesDCSet || clean.Invalidates || clean.PollsCtx ||
		len(clean.Acquires) != 0 || len(clean.Calls) != 0 {
		t.Errorf("Clean has spurious facts: %+v", clean)
	}

	if !g.SummaryOf(fnByName(t, g, "Alloc")).Allocates {
		t.Error("Alloc: make(...) not recorded as allocation")
	}

	set := g.SummaryOf(fnByName(t, g, "Set"))
	if !set.MutatesTable {
		t.Error("Set: indexed write to t.rows not recorded as table mutation")
	}
	if !set.Invalidates {
		t.Error("Set: call to logEdit not recorded as invalidation")
	}
	if len(set.Calls) != 1 || set.Calls[0].Name() != "logEdit" {
		t.Errorf("Set.Calls = %v, want [logEdit]", set.Calls)
	}

	if !g.SummaryOf(fnByName(t, g, "Swap")).MutatesTable {
		t.Error("Swap: structural re-slice of t.rows not recorded as table mutation")
	}
}

func TestSummaryMutexLabels(t *testing.T) {
	g := buildGraph(t, "dfdata/internal/table", tableSrc, "sync", "context")

	both := g.SummaryOf(fnByName(t, g, "LockBoth"))
	if got, want := labels(both.Acquires), []string{"table.global", "table.Table.mu"}; !slices.Equal(got, want) {
		t.Errorf("LockBoth acquires %v, want %v", got, want)
	}
	if both.Acquires[0].Read || !both.Acquires[1].Read {
		t.Errorf("LockBoth read flags wrong: %+v", both.Acquires)
	}
	if got, want := labels(both.Releases), []string{"table.Table.mu", "table.global"}; !slices.Equal(got, want) {
		t.Errorf("LockBoth releases %v, want %v", got, want)
	}
	if !both.Releases[0].Read || both.Releases[1].Read {
		t.Errorf("LockBoth release read flags wrong: %+v", both.Releases)
	}
	for _, a := range append(both.Acquires, both.Releases...) {
		if !a.Pos.IsValid() {
			t.Errorf("acquire/release %s has no position", a.Label)
		}
	}

	local := g.SummaryOf(fnByName(t, g, "LocalLock"))
	if got, want := labels(local.Acquires), []string{"local:mu"}; !slices.Equal(got, want) {
		t.Errorf("LocalLock acquires %v, want %v", got, want)
	}

	// A lock taken inside a closure is the declaring function's behavior.
	closure := g.SummaryOf(fnByName(t, g, "ClosureLock"))
	if !slices.Contains(labels(closure.Acquires), "table.Table.mu") {
		t.Errorf("ClosureLock acquires %v, want table.Table.mu attributed from the closure", labels(closure.Acquires))
	}
}

func TestSummaryCtx(t *testing.T) {
	g := buildGraph(t, "dfdata/internal/table", tableSrc, "sync", "context")
	if !g.SummaryOf(fnByName(t, g, "Poll")).PollsCtx {
		t.Error("Poll: ctx.Err() not recorded as a context poll")
	}
	if !g.SummaryOf(fnByName(t, g, "Delegate")).PollsCtx {
		t.Error("Delegate: forwarding ctx to a callee not recorded as a context poll")
	}
}

func TestReachableDepthBound(t *testing.T) {
	g := buildGraph(t, "dfdata/internal/table", tableSrc, "sync", "context")
	a := fnByName(t, g, "chainA")
	b := fnByName(t, g, "chainB")
	c := fnByName(t, g, "chainC")

	full := g.Reachable([]*types.Func{a}, dataflow.DefaultDepth)
	if !full[a] || !full[b] || !full[c] {
		t.Errorf("Reachable(chainA, default) = %v, want chainA..chainC all reachable", full)
	}
	if full[fnByName(t, g, "Clean")] {
		t.Error("Reachable(chainA) includes the unconnected Clean")
	}

	shallow := g.Reachable([]*types.Func{a}, 1)
	if !shallow[a] || !shallow[b] {
		t.Error("Reachable(chainA, 1) must include the root and its direct callee")
	}
	if shallow[c] {
		t.Error("Reachable(chainA, 1) crossed the depth bound to chainC")
	}
}

func TestTransitiveQueries(t *testing.T) {
	g := buildGraph(t, "dfdata/internal/table", tableSrc, "sync", "context")

	acq := g.TransitiveAcquires(fnByName(t, g, "chainA"), dataflow.DefaultDepth)
	if !slices.Contains(acq, "table.Table.mu") {
		t.Errorf("TransitiveAcquires(chainA) = %v, want table.Table.mu via chainC", acq)
	}

	wrap := fnByName(t, g, "MutWrap")
	if !g.Mutates(wrap, dataflow.DefaultDepth) {
		t.Error("Mutates(MutWrap): table write two frames down not propagated")
	}
	if !g.Invalidates(wrap, dataflow.DefaultDepth) {
		t.Error("Invalidates(MutWrap): logEdit call two frames down not propagated")
	}
	if g.Mutates(fnByName(t, g, "Clean"), dataflow.DefaultDepth) {
		t.Error("Mutates(Clean) = true, want false")
	}
	if !g.PollsCtx(fnByName(t, g, "Delegate"), dataflow.DefaultDepth) {
		t.Error("PollsCtx(Delegate) = false, want true")
	}
}

func TestMutatesDCSet(t *testing.T) {
	const coreSrc = `package core

type Session struct {
	dcs []string
	alg string
}

func (s *Session) SetDCs(d []string) { s.dcs = d }
func (s *Session) SetAlg(a string)   { s.alg = a }
func (s *Session) Read() int         { return len(s.dcs) }
`
	g := buildGraph(t, "dfdata/internal/core", coreSrc)
	if !g.SummaryOf(fnByName(t, g, "SetDCs")).MutatesDCSet {
		t.Error("SetDCs: write to s.dcs not recorded as constraint-set mutation")
	}
	if !g.SummaryOf(fnByName(t, g, "SetAlg")).MutatesDCSet {
		t.Error("SetAlg: write to s.alg not recorded as constraint-set mutation")
	}
	if g.SummaryOf(fnByName(t, g, "Read")).MutatesDCSet {
		t.Error("Read: pure read misclassified as mutation")
	}
}

func TestDeclOfAndFuncsOrder(t *testing.T) {
	g := buildGraph(t, "dfdata/internal/table", tableSrc, "sync", "context")
	fns := g.Funcs()
	if len(fns) == 0 {
		t.Fatal("no functions in graph")
	}
	if fns[0].Name() != "logEdit" {
		t.Errorf("Funcs()[0] = %s, want source order starting at logEdit", fns[0].Name())
	}
	for _, fn := range fns {
		if g.DeclOf(fn) == nil {
			t.Errorf("DeclOf(%s) = nil for a declared function", fn.Name())
		}
		if g.SummaryOf(fn) == nil {
			t.Errorf("SummaryOf(%s) = nil for a declared function", fn.Name())
		}
	}
}

func TestRefreshesPlan(t *testing.T) {
	const coreSrc = `package core

type Session struct {
	dcs []string
}

func (s *Session) refreshPlan() {}

func (s *Session) Swap(d []string) {
	s.dcs = d
	s.refreshPlan()
}

func (s *Session) swapVia(d []string) { s.Swap(d) }

func (s *Session) Read() int { return len(s.dcs) }
`
	g := buildGraph(t, "dfdata/internal/core", coreSrc)
	if !g.SummaryOf(fnByName(t, g, "Swap")).RefreshesPlan {
		t.Error("Swap: direct refreshPlan call not recorded")
	}
	if g.SummaryOf(fnByName(t, g, "Read")).RefreshesPlan {
		t.Error("Read: pure read misclassified as plan refresh")
	}
	if !g.RefreshesPlan(fnByName(t, g, "swapVia"), dataflow.DefaultDepth) {
		t.Error("swapVia: transitive refreshPlan through Swap not reported")
	}
	if g.RefreshesPlan(fnByName(t, g, "Read"), dataflow.DefaultDepth) {
		t.Error("Read: transitive query reported a refresh with none reachable")
	}
}
