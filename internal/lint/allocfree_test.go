package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, "testdata/src/allocfree/internal/hot", "allocfree/internal/hot", lint.AllocFree, "fmt", "strconv", "sync")
}
