// Package loader type-checks Go packages for the trexlint analyzers
// without any dependency outside the standard library.
//
// The strategy mirrors x/tools' unitchecker: ask the go command to build
// the dependency graph (`go list -export -deps -json`), which yields a
// compiler export-data file per dependency, then parse and type-check only
// the target packages from source with a gc-export importer resolving
// their imports. Dependencies are never re-type-checked from source, so
// loading the whole repository costs one cached build plus one
// source-check per target package.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	osexec "os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over patterns and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := osexec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("go list %s: no packages matched", strings.Join(patterns, " "))
	}
	return pkgs, nil
}

// exportIndex maps import paths to compiler export-data files.
type exportIndex map[string]string

// importerFor builds a types.Importer that resolves paths through the
// package's ImportMap (vendoring, test rewrites) and then reads the
// dependency's export data.
func importerFor(fset *token.FileSet, exports exportIndex, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// check parses and type-checks one package's files.
func check(fset *token.FileSet, pkgPath, dir string, fileNames []string, exports exportIndex, importMap map[string]string, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFor(fset, exports, importMap),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	if goVersion != "" {
		conf.GoVersion = goVersion
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, errors.Join(typeErrs...))
	}
	return &Package{
		Path:  pkgPath,
		Name:  tpkg.Name(),
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Load type-checks every package matched by patterns (the non-dependency
// roots of the `go list -deps` graph), resolving their imports through
// compiler export data. dir is the working directory for the go command;
// any directory inside the module works.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(exportIndex)
	goVersion := ""
	var broken []string
	for _, p := range listed {
		if p.Error != nil {
			broken = append(broken, fmt.Sprintf("%s: %s", p.ImportPath, p.Error.Err))
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
	}
	if len(broken) > 0 {
		return nil, fmt.Errorf("packages failed to load:\n  %s", strings.Join(broken, "\n  "))
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		pkg, err := check(fset, p.ImportPath, p.Dir, p.GoFiles, exports, p.ImportMap, goVersion)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks a synthetic package: every non-test .go file under
// dir, registered under pkgPath, with imports resolved through the export
// data of depPatterns' dependency closure. This is how the analysistest
// harness loads testdata packages, which live outside the module's package
// tree but may import real repository packages (repro/internal/table and
// friends) alongside the standard library. Dependency patterns resolve in
// the current working directory, which must sit inside the module; dir is
// only read for source files.
func LoadDir(dir, pkgPath string, depPatterns ...string) (*Package, error) {
	var listed []*listPackage
	if len(depPatterns) > 0 {
		var err error
		listed, err = goList(".", depPatterns)
		if err != nil {
			return nil, err
		}
	}
	exports := make(exportIndex)
	goVersion := ""
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("dependency %s failed to load: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var fileNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		fileNames = append(fileNames, name)
	}
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(fileNames)
	return check(token.NewFileSet(), pkgPath, dir, fileNames, exports, nil, goVersion)
}

// CheckFiles type-checks an already-parsed file set (the unitchecker
// entry: cmd/go hands the file list and the export-data map straight from
// the build graph).
func CheckFiles(fset *token.FileSet, pkgPath string, fileNames []string, packageFile map[string]string, importMap map[string]string, goVersion string) (*Package, error) {
	return check(fset, pkgPath, "", fileNames, exportIndex(packageFile), importMap, goVersion)
}
