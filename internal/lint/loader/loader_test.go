package loader

import (
	"go/types"
	"os"
	"testing"
)

func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := Load(".", "repro/internal/table", "repro/internal/exec")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
		if len(p.Files) == 0 {
			t.Errorf("%s: no files", p.Path)
		}
		if p.Info == nil || len(p.Info.Defs) == 0 {
			t.Errorf("%s: no type info", p.Path)
		}
	}
	tbl := byPath["repro/internal/table"]
	if tbl == nil {
		t.Fatal("repro/internal/table not loaded")
	}
	obj := tbl.Types.Scope().Lookup("Value")
	if obj == nil {
		t.Fatal("table.Value not found in loaded package scope")
	}
	if _, ok := obj.Type().(*types.Named); !ok {
		t.Fatalf("table.Value is %T, want *types.Named", obj.Type())
	}
	// The exec package imports table, sync, and sync/atomic through export
	// data; its methods must have resolved without source-checking deps.
	ex := byPath["repro/internal/exec"]
	if ex.Types.Scope().Lookup("Engine") == nil {
		t.Fatal("exec.Engine not found")
	}
}

func TestLoadDirSyntheticPackage(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/a.go", `package fake

import (
	"math/rand"

	"repro/internal/table"
)

func F(rng *rand.Rand) table.Value { return table.Int(int64(rng.Intn(3))) }
`)
	pkg, err := LoadDir(dir, "fake/pkg", "math/rand", "repro/internal/table")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "fake/pkg" || pkg.Name != "fake" {
		t.Fatalf("got path %q name %q", pkg.Path, pkg.Name)
	}
}

func TestLoadReportsTypeErrors(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/a.go", "package bad\n\nfunc F() int { return \"not an int\" }\n")
	if _, err := LoadDir(dir, "bad/pkg"); err == nil {
		t.Fatal("want type error, got nil")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
