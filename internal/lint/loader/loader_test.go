package loader

import (
	"go/token"
	"go/types"
	"os"
	"testing"
)

func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := Load(".", "repro/internal/table", "repro/internal/exec")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
		if len(p.Files) == 0 {
			t.Errorf("%s: no files", p.Path)
		}
		if p.Info == nil || len(p.Info.Defs) == 0 {
			t.Errorf("%s: no type info", p.Path)
		}
	}
	tbl := byPath["repro/internal/table"]
	if tbl == nil {
		t.Fatal("repro/internal/table not loaded")
	}
	obj := tbl.Types.Scope().Lookup("Value")
	if obj == nil {
		t.Fatal("table.Value not found in loaded package scope")
	}
	if _, ok := obj.Type().(*types.Named); !ok {
		t.Fatalf("table.Value is %T, want *types.Named", obj.Type())
	}
	// The exec package imports table, sync, and sync/atomic through export
	// data; its methods must have resolved without source-checking deps.
	ex := byPath["repro/internal/exec"]
	if ex.Types.Scope().Lookup("Engine") == nil {
		t.Fatal("exec.Engine not found")
	}
}

func TestLoadDirSyntheticPackage(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/a.go", `package fake

import (
	"math/rand"

	"repro/internal/table"
)

func F(rng *rand.Rand) table.Value { return table.Int(int64(rng.Intn(3))) }
`)
	pkg, err := LoadDir(dir, "fake/pkg", "math/rand", "repro/internal/table")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "fake/pkg" || pkg.Name != "fake" {
		t.Fatalf("got path %q name %q", pkg.Path, pkg.Name)
	}
}

func TestLoadReportsTypeErrors(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/a.go", "package bad\n\nfunc F() int { return \"not an int\" }\n")
	if _, err := LoadDir(dir, "bad/pkg"); err == nil {
		t.Fatal("want type error, got nil")
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load(".", "repro/internal/nosuchpackage"); err == nil {
		t.Fatal("want error for a pattern matching no package, got nil")
	}
}

func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(t.TempDir(), "empty/pkg"); err == nil {
		t.Fatal("want error for a directory with no .go files, got nil")
	}
}

func TestLoadDirSkipsTestFiles(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/a.go", "package p\n\nfunc F() int { return 1 }\n")
	writeFile(t, dir+"/a_test.go", "package p\n\nthis is not Go and must never be parsed\n")
	pkg, err := LoadDir(dir, "skip/pkg")
	if err != nil {
		t.Fatalf("LoadDir parsed _test.go files: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("got %d files, want 1 (the non-test file)", len(pkg.Files))
	}
}

func TestLoadDirBadDependencyPattern(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/a.go", "package p\n\nfunc F() {}\n")
	if _, err := LoadDir(dir, "dep/pkg", "repro/internal/nosuchpackage"); err == nil {
		t.Fatal("want error for an unloadable dependency pattern, got nil")
	}
}

func TestCheckFilesMissingFile(t *testing.T) {
	_, err := CheckFiles(token.NewFileSet(), "gone/pkg", []string{"/nonexistent/zz.go"}, nil, nil, "")
	if err == nil {
		t.Fatal("want error for a missing source file, got nil")
	}
}

func TestCheckFilesMissingExportData(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/a.go", `package p

import "repro/internal/table"

func F() table.Value { return table.Int(1) }
`)
	// No PackageFile entry for the import: type-checking must fail loudly
	// rather than guess at the dependency's API.
	_, err := CheckFiles(token.NewFileSet(), "noexport/pkg", []string{dir + "/a.go"}, nil, nil, "")
	if err == nil {
		t.Fatal("want error when export data for an import is absent, got nil")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
