package analysistest

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint/analysis"
)

// funcReporter flags every function declaration — enough surface to
// exercise want-matching, claim ordering, and suppression in one pass.
var funcReporter = &analysis.Analyzer{
	Name: "funcreporter",
	Doc:  "test analyzer: report every FuncDecl",
	Run: func(pass *analysis.Pass) (any, error) {
		pass.Inspect(func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				pass.Reportf(fd.Pos(), "func %q declared", fd.Name.Name)
			}
			return true
		})
		return nil, nil
	},
}

func TestRunMatchesWantAndSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `package p

func A() {} // want "func \"A\" declared"

func B() {} // want "declared"

//lint:allow funcreporter covered by suppression, not a want
func C() {}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	Run(t, dir, "p", funcReporter)
}

func TestMatchedQuote(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{`"abc"`, 4},
		{`"a\"b" tail`, 5},
		{`"unterminated`, -1},
		{`"trailing\"`, -1},
	}
	for _, c := range cases {
		if got := matchedQuote(c.in); got != c.want {
			t.Errorf("matchedQuote(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
