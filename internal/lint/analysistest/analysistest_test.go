package analysistest

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint/analysis"
)

// funcReporter flags every function declaration — enough surface to
// exercise want-matching, claim ordering, and suppression in one pass.
var funcReporter = &analysis.Analyzer{
	Name: "funcreporter",
	Doc:  "test analyzer: report every FuncDecl",
	Run: func(pass *analysis.Pass) (any, error) {
		pass.Inspect(func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				pass.Reportf(fd.Pos(), "func %q declared", fd.Name.Name)
			}
			return true
		})
		return nil, nil
	},
}

func TestRunMatchesWantAndSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `package p

func A() {} // want "func \"A\" declared"

func B() {} // want "declared"

//lint:allow funcreporter covered by suppression, not a want
func C() {}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	Run(t, dir, "p", funcReporter)
}

// paramReporter reports every parameter name: several diagnostics on one
// source line, for the multi-pattern want form.
var paramReporter = &analysis.Analyzer{
	Name: "paramreporter",
	Doc:  "test analyzer: report every function parameter",
	Run: func(pass *analysis.Pass) (any, error) {
		pass.Inspect(func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				return true
			}
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					pass.Reportf(name.Pos(), "param %q", name.Name)
				}
			}
			return true
		})
		return nil, nil
	},
}

// TestRunMultipleWantsPerLine checks that one want comment carrying
// several quoted patterns claims one diagnostic per pattern, in order.
func TestRunMultipleWantsPerLine(t *testing.T) {
	dir := t.TempDir()
	src := `package p

func D(a int, b int) {} // want "param \"a\"" "param \"b\""

func E(c int) {} // want "param \"c\""
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	Run(t, dir, "p", paramReporter)
}

func TestMatchedQuote(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{`"abc"`, 4},
		{`"a\"b" tail`, 5},
		{`"unterminated`, -1},
		{`"trailing\"`, -1},
	}
	for _, c := range cases {
		if got := matchedQuote(c.in); got != c.want {
			t.Errorf("matchedQuote(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
