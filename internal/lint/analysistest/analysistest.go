// Package analysistest is a standard-library re-implementation of
// x/tools' analysistest for the trexlint suite: it loads a testdata
// package, runs one analyzer over it with //lint:allow suppression
// applied (so suppression behavior is itself testable), and checks the
// produced diagnostics against `// want "regexp"` comments, line by line.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// expectation is one `want` regexp at one (file, line).
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the package rooted at dir under the import path pkgPath
// (whose suffix drives the analyzers' scope rules), runs a, and compares
// diagnostics against the package's want comments. deps lists the import
// patterns (standard library and repro/... packages) the testdata files
// need; they are resolved from the current working directory, which `go
// test` sets to the test's package directory inside the module.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer, deps ...string) {
	t.Helper()
	pkg, err := loader.LoadDir(dir, pkgPath, deps...)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	want := collectWant(t, pkg.Fset, pkg.Files)

	sup := analysis.CollectSuppressions(pkg.Fset, pkg.Files)
	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	pass.Report = func(d analysis.Diagnostic) {
		if !sup.Suppressed(pkg.Fset, a.Name, d.Pos) {
			got = append(got, d)
		}
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range got {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(want, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range want {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched expectation on (file, line) whose
// regexp matches msg.
func claim(want []*expectation, file string, line int, msg string) bool {
	for _, w := range want {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWant parses `// want "rx" "rx"...` comments. The expectation
// anchors to the line the comment starts on (the trailing-comment style
// used throughout the testdata).
func collectWant(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				for rest != "" {
					if !strings.HasPrefix(rest, `"`) {
						t.Fatalf("%s: malformed want comment near %q", pos, rest)
					}
					end := matchedQuote(rest)
					if end < 0 {
						t.Fatalf("%s: unterminated want pattern %q", pos, rest)
					}
					lit := rest[:end+1]
					rest = strings.TrimSpace(rest[end+1:])
					unq, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, unq, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// matchedQuote returns the index of the closing quote of a leading
// Go-quoted string, honoring backslash escapes; -1 if unterminated.
func matchedQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
