package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctxflow/internal/worker", "ctxflow/internal/worker", lint.CtxFlow, "context")
}
