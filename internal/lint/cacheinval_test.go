package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestCacheInvalTable(t *testing.T) {
	analysistest.Run(t, "testdata/src/cacheinval/internal/table", "cacheinval/internal/table", lint.CacheInval)
}

func TestCacheInvalSession(t *testing.T) {
	analysistest.Run(t, "testdata/src/cacheinval/internal/core", "cacheinval/internal/core", lint.CacheInval, "repro/internal/exec")
}
