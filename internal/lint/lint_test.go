package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

// TestRepoIsLintClean is the acceptance gate in test form: the full
// trexlint suite over every package of the module must produce zero
// unsuppressed findings. A new finding means either fix the code or add a
// justified //lint:allow at the site — never weaken the analyzer.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command over the whole module")
	}
	pkgs, err := loader.Load(".", "repro/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages loaded; pattern repro/... should cover the whole module", len(pkgs))
	}
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestMalformedAllowDirective checks that a suppression without a reason
// is itself a finding, reported under the lintdirective pseudo-analyzer.
func TestMalformedAllowDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package core

import "repro/internal/table"

func badDesc(v table.Value) string {
	//lint:allow cachekey
	return v.String()
}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "directive/internal/core", "repro/internal/table")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.RunPackage(pkg, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var haveMalformed, haveCacheKey bool
	for _, f := range findings {
		switch f.Analyzer {
		case "lintdirective":
			haveMalformed = true
			if !strings.Contains(f.Message, "want //lint:allow <analyzer> <reason>") {
				t.Errorf("unexpected malformed-directive message: %s", f.Message)
			}
		case "cachekey":
			// The reasonless directive must NOT suppress the finding.
			haveCacheKey = true
		}
	}
	if !haveMalformed {
		t.Error("missing lintdirective finding for reasonless //lint:allow")
	}
	if !haveCacheKey {
		t.Error("reasonless //lint:allow suppressed the cachekey finding; it must not")
	}
}

// loadSnippet type-checks one synthetic file under the given package
// path and runs the full analyzer suite over it.
func loadSnippet(t *testing.T, pkgPath, src string, deps ...string) []lint.Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, pkgPath, deps...)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.RunPackage(pkg, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestStaleAllowDirective checks that a directive suppressing nothing is
// itself reported: suppressions must not outlive the finding they
// justified.
func TestStaleAllowDirective(t *testing.T) {
	findings := loadSnippet(t, "directive/internal/exec", `package exec

func Fine(xs []int, sink func(int)) {
	//lint:allow detmap slice iteration was a map range before the refactor
	for _, x := range xs {
		sink(x)
	}
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 stale-directive report: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "lintdirective" || !strings.Contains(f.Message, "stale //lint:allow detmap") {
		t.Errorf("unexpected finding for a stale directive: %s", f)
	}
}

// TestUnknownAnalyzerDirective checks that a directive naming an analyzer
// no suite knows is reported as a typo rather than silently ignored.
func TestUnknownAnalyzerDirective(t *testing.T) {
	findings := loadSnippet(t, "directive/internal/exec", `package exec

func Fine(xs []int, sink func(int)) {
	//lint:allow detmpa transposed analyzer name
	for _, x := range xs {
		sink(x)
	}
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 unknown-analyzer report: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "lintdirective" || !strings.Contains(f.Message, `unknown analyzer "detmpa"`) {
		t.Errorf("unexpected finding for an unknown-analyzer directive: %s", f)
	}
}

// TestMisplacedAllowDirective checks the position contract: a directive
// two lines above the finding covers nothing, so the finding stays active
// and the directive is reported stale.
func TestMisplacedAllowDirective(t *testing.T) {
	findings := loadSnippet(t, "directive/internal/exec", `package exec

func Grid(m map[int]int, sink func(int)) {
	//lint:allow detmap sink is commutative (directive stranded by an inserted line)
	_ = len(m)
	for k := range m {
		sink(k)
	}
}
`)
	var haveActive, haveStale bool
	for _, f := range findings {
		switch f.Analyzer {
		case "detmap":
			if f.Allowed {
				t.Errorf("misplaced directive suppressed the finding: %s", f)
			}
			haveActive = true
		case "lintdirective":
			haveStale = true
		}
	}
	if !haveActive {
		t.Error("missing active detmap finding below the misplaced directive")
	}
	if !haveStale {
		t.Error("missing stale report for the misplaced directive")
	}
}

// TestFindingString pins the file:line:col prefix format the CI log
// greps for.
func TestFindingString(t *testing.T) {
	dir := t.TempDir()
	src := "package exec\n\nfunc F(m map[int]int, sink func(int)) {\n\tfor k := range m {\n\t\tsink(k)\n\t}\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "fmttest/internal/exec")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.RunPackage(pkg, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	s := findings[0].String()
	if !strings.Contains(s, "a.go:4:2: detmap:") {
		t.Errorf("finding format %q missing file:line:col: analyzer prefix", s)
	}
}
