package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

// TestRepoIsLintClean is the acceptance gate in test form: the full
// trexlint suite over every package of the module must produce zero
// unsuppressed findings. A new finding means either fix the code or add a
// justified //lint:allow at the site — never weaken the analyzer.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command over the whole module")
	}
	pkgs, err := loader.Load(".", "repro/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages loaded; pattern repro/... should cover the whole module", len(pkgs))
	}
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestMalformedAllowDirective checks that a suppression without a reason
// is itself a finding, reported under the lintdirective pseudo-analyzer.
func TestMalformedAllowDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package core

import "repro/internal/table"

func badDesc(v table.Value) string {
	//lint:allow cachekey
	return v.String()
}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "directive/internal/core", "repro/internal/table")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.RunPackage(pkg, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var haveMalformed, haveCacheKey bool
	for _, f := range findings {
		switch f.Analyzer {
		case "lintdirective":
			haveMalformed = true
			if !strings.Contains(f.Message, "want //lint:allow <analyzer> <reason>") {
				t.Errorf("unexpected malformed-directive message: %s", f.Message)
			}
		case "cachekey":
			// The reasonless directive must NOT suppress the finding.
			haveCacheKey = true
		}
	}
	if !haveMalformed {
		t.Error("missing lintdirective finding for reasonless //lint:allow")
	}
	if !haveCacheKey {
		t.Error("reasonless //lint:allow suppressed the cachekey finding; it must not")
	}
}

// TestFindingString pins the file:line:col prefix format the CI log
// greps for.
func TestFindingString(t *testing.T) {
	dir := t.TempDir()
	src := "package exec\n\nfunc F(m map[int]int, sink func(int)) {\n\tfor k := range m {\n\t\tsink(k)\n\t}\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "fmttest/internal/exec")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.RunPackage(pkg, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	s := findings[0].String()
	if !strings.Contains(s, "a.go:4:2: detmap:") {
		t.Errorf("finding format %q missing file:line:col: analyzer prefix", s)
	}
}
