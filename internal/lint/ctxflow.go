package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
	"repro/internal/lint/dataflow"
)

// CtxFlow enforces cancellation propagation in functions that accept a
// context.Context:
//
//   - every goroutine the function starts must thread the incoming
//     context into the spawned work (the spawned call or its closure body
//     must reference the ctx parameter), or cancellation can never reach
//     the worker;
//   - every loop that does real work (contains a function call) must
//     consult the context on every iteration: a poll of ctx.Err / Done /
//     Deadline / Value, or passing ctx into a callee, somewhere on every
//     cycle through the loop head. The check runs over the CFG
//     (cfg.CycleAvoiding), so a poll inside a conditional branch that an
//     iteration can skip does not count — exactly the shape that turns
//     "cancellable" sampling loops into unkillable ones.
//
// Loops whose body merely shuffles data (no calls) are exempt: they are
// bounded by their inputs and polling there is noise. The sampled-walk
// and repair loops this analyzer exists for all call into rule evaluation
// or table access on every iteration.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "reports goroutines and work loops in context-accepting functions that cannot observe cancellation",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) (any, error) {
	g := dataflow.Build(pass.Fset, pass.Files, pass.TypesInfo, pass.Pkg)
	for _, fn := range g.Funcs() {
		decl := g.DeclOf(fn)
		checkCtxRegion(pass, g, decl.Body, ctxParam(pass, decl.Type.Params))
	}
	return nil, nil
}

// ctxParam returns the context.Context parameter object of a parameter
// list, nil when there is none (or only a blank one — nothing can be
// threaded from an unnamed context).
func ctxParam(pass *analysis.Pass, params *ast.FieldList) types.Object {
	if params == nil {
		return nil
	}
	for _, field := range params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if !isNamedType(t, "context", "Context") {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// checkCtxRegion checks one lexical function region — a declaration body
// or a closure body — against the context object in scope there. Closures
// form child regions: one with its own context parameter shadows the
// outer object (worker callbacks receive their per-worker context), one
// without inherits the enclosing region's via capture.
func checkCtxRegion(pass *analysis.Pass, g *dataflow.Graph, body *ast.BlockStmt, ctxObj types.Object) {
	// Partition the region: goroutine spawns and closures at this level.
	var gos []*ast.GoStmt
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.GoStmt:
			gos = append(gos, n)
		}
		return true
	})

	if ctxObj != nil {
		// Goroutine spawns: the spawned call (or its closure body) must
		// reference the in-scope context.
		for _, gs := range gos {
			if !referencesObj(pass, gs.Call, ctxObj) {
				pass.Reportf(gs.Pos(),
					"goroutine started without the incoming context %s; thread it into the worker so cancellation propagates (or //lint:allow ctxflow <reason>)",
					ctxObj.Name())
			}
		}
		// Work loops at this level. cfg.New does not descend into
		// closures, so each loop here belongs to this region. Only
		// top-level loops are held to the contract: an inner loop is one
		// iteration's worth of work, and the enclosing loop's back edge is
		// where cancellation must be observed.
		check := func(n ast.Node) bool { return nodeChecksCtx(pass, g, n, ctxObj) }
		graph := cfg.New(body)
		for _, loop := range graph.Loops {
			if nestedLoop(graph, loop) || !loopDoesWork(pass, g, loop.Stmt) {
				continue
			}
			if graph.CycleAvoiding(loop.Head, check) {
				pass.Reportf(loop.Stmt.Pos(),
					"loop can iterate without consulting %s: poll %s.Err() (or pass %s to a callee) on every iteration so cancellation is observed (or //lint:allow ctxflow <reason>)",
					ctxObj.Name(), ctxObj.Name(), ctxObj.Name())
			}
		}
	}

	for _, lit := range lits {
		child := ctxObj
		if own := ctxParam(pass, lit.Type.Params); own != nil {
			child = own
		}
		checkCtxRegion(pass, g, lit.Body, child)
	}
}

// nestedLoop reports whether loop sits inside another loop of the same
// region.
func nestedLoop(graph *cfg.Graph, loop *cfg.Loop) bool {
	for _, outer := range graph.Loops {
		if outer == loop {
			continue
		}
		if outer.Stmt.Pos() <= loop.Stmt.Pos() && loop.Stmt.End() <= outer.Stmt.End() {
			return true
		}
	}
	return false
}

// loopDoesWork reports whether the loop is cancellable-worthy: its body
// contains a nested loop (work scales multiplicatively), passes a context
// into a callee, or calls a same-package function that transitively
// consults one. Flat loops over accessors — result assembly, statistics
// merging — are bounded by their inputs and exempt: demanding a poll
// there would be noise, not safety.
func loopDoesWork(pass *analysis.Pass, g *dataflow.Graph, stmt ast.Stmt) bool {
	var body *ast.BlockStmt
	switch s := stmt.(type) {
	case *ast.ForStmt:
		body = s.Body
	case *ast.RangeStmt:
		body = s.Body
	default:
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if isNamedType(pass.TypesInfo.TypeOf(arg), "context", "Context") {
					found = true
				}
			}
			if fn := calledFunc(pass, n); fn != nil && g.PollsCtx(fn, dataflow.DefaultDepth) {
				found = true
			}
		}
		return !found
	})
	return found
}

// referencesObj reports whether the subtree mentions obj.
func referencesObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// nodeChecksCtx reports whether node n consults the context: calls a
// method on ctx, passes ctx to any callee, or receives from ctx.Done().
// Range heads scan only their head-resident parts — their body statements
// live in separate blocks (see cfg.EveryPathHits).
func nodeChecksCtx(pass *analysis.Pass, g *dataflow.Graph, n ast.Node, ctxObj types.Object) bool {
	if r, ok := n.(*ast.RangeStmt); ok {
		return r.X != nil && nodeChecksCtx(pass, g, r.X, ctxObj)
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return !found
		}
		// ctx.Err(), ctx.Done(), ...
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxObj {
				found = true
				return false
			}
		}
		// f(ctx, ...): the callee observes cancellation (its own body is
		// held to the same contract when it is in this package, and the
		// convention binds cross-package callees).
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxObj {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
