package lint

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// CacheKey preserves the PR 4 injectivity fix: shared-cache descriptors
// and keys must render table.Value through its kind-tagged identity key
// (Value.AppendKey / Value.Key), never Value.String, which collapses
// String("5"), Int(5) and Float(5.0) into "5" — two distinct games
// interning one cache ID would silently serve each other's coalition
// values.
//
// Mechanically: inside any function whose name contains "desc" or "key"
// (gameDesc, targetDesc, constraintGameDesc, repairDesc, appendCompositeKey,
// ...), a call to String() on a table.Value — directly or through fmt's
// Stringer dispatch — is a finding.
var CacheKey = &analysis.Analyzer{
	Name: "cachekey",
	Doc: "forbid table.Value.String (and fmt formatting of table.Value) in " +
		"cache-key/descriptor construction; use Value.AppendKey or " +
		"Value.Key, whose kind tags keep descriptors injective",
	Run: runCacheKey,
}

func runCacheKey(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isKeyBuilderName(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calledFunc(pass, call)
				if fn == nil {
					return true
				}
				if fn.Name() == "String" && isNamedType(recvType(fn), "internal/table", "Value") {
					pass.Reportf(call.Pos(), "Value.String in key builder %s collapses kinds (String(\"5\") == Int(5) == Float(5.0)); use Value.AppendKey/Key to keep the descriptor injective", fd.Name.Name)
					return true
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					for _, arg := range call.Args {
						if isNamedType(pass.TypesInfo.TypeOf(arg), "internal/table", "Value") {
							pass.Reportf(arg.Pos(), "fmt formatting of table.Value in key builder %s goes through Value.String and collapses kinds; use Value.AppendKey/Key", fd.Name.Name)
						}
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// isKeyBuilderName reports whether a function, by name, constructs cache
// keys or descriptors.
func isKeyBuilderName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "desc") || strings.Contains(lower, "key")
}
