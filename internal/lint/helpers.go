package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// pathHasSuffix reports whether pkgPath ends in suffix at a path-segment
// boundary: "repro/internal/exec" matches "internal/exec", but
// "repro/internal/exechelper" does not. Scope rules match on suffixes
// rather than exact paths so the analysistest packages (e.g.
// "detmap/internal/exec") exercise the same scoping code the repository
// packages do.
func pathHasSuffix(pkgPath, suffix string) bool {
	if pkgPath == suffix {
		return true
	}
	return strings.HasSuffix(pkgPath, "/"+suffix)
}

// inScope reports whether pkgPath matches any of the suffixes.
func inScope(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pathHasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// calledFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), nil for builtins, conversions and
// indirect calls through function values.
func calledFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isNamedType reports whether t (after stripping pointers and aliases) is
// the named type name declared in a package whose path ends in pkgSuffix.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isTableValueSlice reports whether t is []table.Value (a row of cell
// storage, or an alias of one).
func isTableValueSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	slice, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isNamedType(slice.Elem(), "internal/table", "Value")
}

// isTableRowGrid reports whether t is [][]table.Value (a whole-table row
// grid, or an alias of one) — the structural mutation surface.
func isTableRowGrid(t types.Type) bool {
	if t == nil {
		return false
	}
	slice, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isTableValueSlice(slice.Elem())
}

// recvIdent returns the receiver identifier of a method declaration, nil
// when absent or blank.
func recvIdent(decl *ast.FuncDecl) *ast.Ident {
	if decl.Recv == nil || len(decl.Recv.List) != 1 || len(decl.Recv.List[0].Names) != 1 {
		return nil
	}
	id := decl.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}

// sameObject reports whether two identifiers resolve to one object.
func sameObject(pass *analysis.Pass, a, b *ast.Ident) bool {
	objA := pass.TypesInfo.ObjectOf(a)
	return objA != nil && objA == pass.TypesInfo.ObjectOf(b)
}

// parentMap indexes the immediate parent of every node under root. The
// flow-sensitive analyzers use it to classify an allocation site by its
// syntactic context (assigned, returned, passed to a call, ...).
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// exprString renders an expression as source text for diagnostics,
// truncated so composite literals do not flood the message.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	s := buf.String()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + "…"
	}
	if len(s) > 40 {
		s = s[:40] + "…"
	}
	return s
}

// enclosing walks up the parent map from n and returns the nearest
// ancestor (including n itself) for which match returns true.
func enclosing(parents map[ast.Node]ast.Node, n ast.Node, match func(ast.Node) bool) ast.Node {
	for cur := n; cur != nil; cur = parents[cur] {
		if match(cur) {
			return cur
		}
	}
	return nil
}
