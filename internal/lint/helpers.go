package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// pathHasSuffix reports whether pkgPath ends in suffix at a path-segment
// boundary: "repro/internal/exec" matches "internal/exec", but
// "repro/internal/exechelper" does not. Scope rules match on suffixes
// rather than exact paths so the analysistest packages (e.g.
// "detmap/internal/exec") exercise the same scoping code the repository
// packages do.
func pathHasSuffix(pkgPath, suffix string) bool {
	if pkgPath == suffix {
		return true
	}
	return strings.HasSuffix(pkgPath, "/"+suffix)
}

// inScope reports whether pkgPath matches any of the suffixes.
func inScope(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pathHasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// calledFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), nil for builtins, conversions and
// indirect calls through function values.
func calledFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isNamedType reports whether t (after stripping pointers and aliases) is
// the named type name declared in a package whose path ends in pkgSuffix.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isTableValueSlice reports whether t is []table.Value (a row of cell
// storage, or an alias of one).
func isTableValueSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	slice, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isNamedType(slice.Elem(), "internal/table", "Value")
}

// recvIdent returns the receiver identifier of a method declaration, nil
// when absent or blank.
func recvIdent(decl *ast.FuncDecl) *ast.Ident {
	if decl.Recv == nil || len(decl.Recv.List) != 1 || len(decl.Recv.List[0].Names) != 1 {
		return nil
	}
	id := decl.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}

// sameObject reports whether two identifiers resolve to one object.
func sameObject(pass *analysis.Pass, a, b *ast.Ident) bool {
	objA := pass.TypesInfo.ObjectOf(a)
	return objA != nil && objA == pass.TypesInfo.ObjectOf(b)
}
