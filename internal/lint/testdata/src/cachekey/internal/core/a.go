// Package core is cachekey testdata: key/descriptor builders must render
// table.Value through AppendKey/Key, never String.
package core

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// badTargetDesc collapses kinds in a descriptor.
func badTargetDesc(v table.Value) string {
	return v.String() // want "Value.String in key builder badTargetDesc collapses kinds"
}

// badFmtKey reaches String through fmt's Stringer dispatch.
func badFmtKey(v table.Value) string {
	return fmt.Sprintf("target=%v", v) // want "fmt formatting of table.Value in key builder badFmtKey"
}

// goodTargetDesc uses the kind-tagged identity key.
func goodTargetDesc(v table.Value) string {
	return string(v.AppendKey(nil))
}

// goodKeyBuilder may use String on non-Value types freely.
func goodKeyBuilder(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

// render is not a key builder: Value.String is fine in display code.
func render(v table.Value) string {
	return v.String()
}

// allowedDesc carries a justification and is suppressed.
func allowedDesc(v table.Value) string {
	//lint:allow cachekey debug descriptor, never used as a cache key
	return v.String()
}
