// Package hot is allocfree testdata: functions reachable from
// //lint:hotpath roots must not allocate on the steady state.
package hot

import (
	"fmt"
	"strconv"
	"sync"
)

// sink accepts anything; passing a non-pointer-shaped value boxes it.
func sink(v any) { _ = v }

// visit retains its callback beyond the call for all the analyzer knows.
func visit(f func()) { f() }

// EscapeReturn is the deliberately escaping hot-path case: the fresh
// slice leaves the frame through the return.
//
//lint:hotpath
func EscapeReturn(n int) []int {
	return make([]int, n) // want "escapes: returned to caller"
}

// EscapeViaLocal allocates into a local that is later returned; the
// diagnostic names both the site and the carrying local.
//
//lint:hotpath
func EscapeViaLocal(n int) []int {
	buf := make([]int, n) // want "escapes: returned to caller .via buf."
	for i := range buf {
		buf[i] = i
	}
	return buf
}

// Transitive is a root whose allocation hides in a same-package callee.
//
//lint:hotpath
func Transitive(n int) string {
	return helper(n)
}

func helper(n int) string {
	return strconv.Itoa(n) // want "call to strconv.Itoa allocates its result"
}

// GrowGood appends into a caller-provided buffer: growth is the
// caller's problem, not a hot-path site.
//
//lint:hotpath
func GrowGood(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

// GrowBad re-grows a zero-capacity local on every invocation.
//
//lint:hotpath
func GrowBad(n int) int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "append grows out, a slice declared with zero capacity"
	}
	return len(out)
}

// PoolMiss allocates only under a capacity guard — the cold-path idiom
// is exempt.
//
//lint:hotpath
func PoolMiss(buf []byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	return buf[:n]
}

// ErrorExit allocates only while producing a non-nil error; error exits
// allocate by design.
//
//lint:hotpath
func ErrorExit(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("hot: negative count %d", n)
	}
	return n, nil
}

// Boxed passes an int where an interface is expected, allocating the
// boxed copy; the pointer-shaped argument next to it is free.
//
//lint:hotpath
func Boxed(v int, p *int) {
	sink(v) // want "argument v boxes a int into an interface"
	sink(p)
}

// ClosureEscape hands a capturing closure to a callee that may retain
// it; the capture forces a heap closure per call.
//
//lint:hotpath
func ClosureEscape(n int) {
	visit(func() { // want "closure capturing n escapes: passed to visit"
		_ = n
	})
}

// Allowed shows the justified-site escape hatch.
//
//lint:hotpath
func Allowed(n int) []int {
	//lint:allow allocfree benchmark fixture: one warm-up slice per process
	return make([]int, n)
}

// scratch is a pool whose New constructor is the slow path by
// definition.
var scratch = sync.Pool{
	New: func() any {
		b := make([]byte, 64)
		return &b
	},
}

// Pooled takes the warm path through the pool.
//
//lint:hotpath
func Pooled() int {
	b := scratch.Get().(*[]byte)
	defer scratch.Put(b)
	return len(*b)
}

// ColdAllocates is NOT reachable from any hot-path root: it may
// allocate freely.
func ColdAllocates(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, strconv.Itoa(i))
	}
	return out
}
