// Package worker is ctxflow testdata: goroutines and work loops in
// context-accepting functions must be able to observe cancellation.
package worker

import "context"

// pollHelper consults its context; callers that pass ctx through it are
// covered on that node.
func pollHelper(ctx context.Context) error { return ctx.Err() }

// step transitively polls a context, so loops calling it count as work.
func step(i int) int {
	_ = context.Background().Err()
	return i
}

// SpawnBad starts a worker the incoming context can never reach.
func SpawnBad(ctx context.Context, ch chan int) {
	go func() { // want "goroutine started without the incoming context ctx"
		ch <- 1
	}()
}

// SpawnGood threads the context into the worker.
func SpawnGood(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case ch <- 1:
		}
	}()
}

// SpawnAllowed documents why the goroutine is reaped another way.
func SpawnAllowed(ctx context.Context, ch chan int) {
	//lint:allow ctxflow the send is reaped by closing ch during shutdown
	go func() {
		ch <- 1
	}()
}

// SweepBad does multiplicative work with no poll on any back edge.
func SweepBad(ctx context.Context, rows [][]int) int {
	total := 0
	for _, row := range rows { // want "loop can iterate without consulting ctx"
		for _, v := range row {
			total += v
		}
	}
	return total
}

// SweepGood polls unconditionally at the top of every iteration; the
// inner loop is one iteration's worth of work and exempt.
func SweepGood(ctx context.Context, rows [][]int) (int, error) {
	total := 0
	for _, row := range rows {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for _, v := range row {
			total += v
		}
	}
	return total, nil
}

// SweepSkippable polls only inside a branch an iteration can skip — the
// shape that turns cancellable loops into unkillable ones.
func SweepSkippable(ctx context.Context, rows [][]int) int {
	total := 0
	for i, row := range rows { // want "loop can iterate without consulting ctx"
		if i%2 == 0 {
			if ctx.Err() != nil {
				return total
			}
		}
		for _, v := range row {
			total += v
		}
	}
	return total
}

// DelegateGood passes ctx into the callee on every iteration: that node
// is simultaneously the work and the cancellation point.
func DelegateGood(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := pollHelper(ctx); err != nil {
			return err
		}
	}
	return nil
}

// DrawBad calls a transitively-polling callee without handing it the
// incoming context.
func DrawBad(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want "loop can iterate without consulting ctx"
		total += step(i)
	}
	return total
}

// Assemble is a flat accessor loop: bounded by its input, no calls, no
// poll required.
func Assemble(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// FanOut's closure has its own context parameter shadowing the outer
// one; its loop is judged against the inner context.
func FanOut(ctx context.Context, run func(f func(ctx context.Context) error)) {
	run(func(ctx context.Context) error {
		for i := 0; i < 8; i++ {
			if err := pollHelper(ctx); err != nil {
				return err
			}
		}
		return nil
	})
}

// Inherited closures without their own context parameter are held to
// the enclosing region's context.
func Inherited(ctx context.Context, run func(f func())) {
	run(func() {
		total := 0
		for i := 0; i < 8; i++ { // want "loop can iterate without consulting ctx"
			total += step(i)
		}
		_ = total
	})
}

// NoContext has nothing to thread; goroutines and loops are unchecked.
func NoContext(ch chan int, rows [][]int) int {
	go func() {
		ch <- 1
	}()
	total := 0
	for _, row := range rows {
		for _, v := range row {
			total += v
		}
	}
	return total
}
