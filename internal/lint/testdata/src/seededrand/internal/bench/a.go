// Package bench is seededrand testdata outside the deterministic scope:
// wall-clock timing is what a benchmark harness is for.
package bench

import "time"

// Elapsed times f; out of scope, not a finding.
func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
