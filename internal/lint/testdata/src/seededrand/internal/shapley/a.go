// Package shapley is seededrand testdata inside the deterministic engine
// scope.
package shapley

import (
	"math/rand"
	"time"
)

// Bad draws from the process-global RNG and reads the wall clock.
func Bad() int {
	n := rand.Intn(10)                 // want "rand.Intn draws from the process-global RNG"
	rand.Shuffle(n, func(i, j int) {}) // want "rand.Shuffle draws from the process-global RNG"
	if time.Now().IsZero() {           // want "time.Now is a nondeterminism source"
		return 0
	}
	return n
}

// Good threads a seeded instance; constructors and methods are sanctioned.
func Good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// GoodTimeValues uses time values without reading the clock.
func GoodTimeValues(d time.Duration) time.Duration { return d * 2 }

// Allowed carries a justification and is suppressed.
func Allowed() int64 {
	//lint:allow seededrand telemetry timestamp, never feeds result computation
	return time.Now().UnixNano()
}
