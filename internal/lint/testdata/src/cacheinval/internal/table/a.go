// Package table is cacheinval testdata: its import path ends in
// internal/table, so its Table type is the one whose row storage the
// analyzer guards.
package table

// Value is one cell.
type Value struct{ s string }

// Table owns row storage and the edit log.
type Table struct {
	rows  [][]Value
	edits int
}

// logEdit is the invalidation surface; the surface itself writes freely.
func (t *Table) logEdit(row, col int) { t.edits++ }

// invalidateEdits drops the log wholesale.
func (t *Table) invalidateEdits() {
	t.edits = 0
	t.rows = t.rows[:len(t.rows)]
}

// touch is a same-package helper that transitively invalidates.
func (t *Table) touch(row, col int) { t.logEdit(row, col) }

// SetGood mutates and then invalidates on the only path.
func (t *Table) SetGood(row, col int, v Value) {
	t.rows[row][col] = v
	t.logEdit(row, col)
}

// SetViaHelper reaches the surface through a same-package callee.
func (t *Table) SetViaHelper(row, col int, v Value) {
	t.rows[row][col] = v
	t.touch(row, col)
}

// SetDeferred registers the invalidation up front; defers run on every
// exit path.
func (t *Table) SetDeferred(row, col int, v Value, fast bool) {
	defer t.logEdit(row, col)
	t.rows[row][col] = v
	if fast {
		return
	}
	t.rows[row][col] = v
}

// SetEarlyReturn leaks a return path that skips the invalidation.
func (t *Table) SetEarlyReturn(row, col int, v Value, fast bool) {
	t.rows[row][col] = v // want "table row storage .t.rows.row..col.. is mutated but not every path to return passes cache invalidation"
	if fast {
		return
	}
	t.logEdit(row, col)
}

// SetOneArm invalidates on one branch arm only.
func (t *Table) SetOneArm(row, col int, v Value, log bool) {
	t.rows[row][col] = v // want "table row storage .t.rows.row..col.. is mutated but not every path to return passes cache invalidation"
	if log {
		t.logEdit(row, col)
	}
}

// SwapRows re-slices storage structurally with no invalidation at all.
func (t *Table) SwapRows(rows [][]Value) {
	t.rows = rows // want "table row storage .t.rows. is mutated but not every path to return passes cache invalidation"
}

// logStructural is the typed structural invalidation surface (row
// insert/delete entries).
func (t *Table) logStructural(kind, row int) { t.edits++ }

// AppendGood grows storage and logs the typed insert.
func (t *Table) AppendGood(row []Value) {
	t.rows = append(t.rows, row)
	t.logStructural(1, len(t.rows)-1)
}

// DeleteGood swap-deletes and logs the typed delete.
func (t *Table) DeleteGood(i int) {
	last := len(t.rows) - 1
	t.rows[i], t.rows[last] = t.rows[last], t.rows[i]
	t.rows = t.rows[:last]
	t.logStructural(2, i)
}

// AppendNoLog grows storage without any invalidation: every consumer's
// window goes stale silently.
func (t *Table) AppendNoLog(row []Value) {
	t.rows = append(t.rows, row) // want "table row storage .t.rows. is mutated but not every path to return passes cache invalidation"
}

// DeleteOneArm logs the structural edit on one branch only.
func (t *Table) DeleteOneArm(i int, log bool) {
	last := len(t.rows) - 1
	t.rows = t.rows[:last] // want "table row storage .t.rows. is mutated but not every path to return passes cache invalidation"
	if log {
		t.logStructural(2, i)
	}
}

// SetAllowed carries a reviewed justification.
func (t *Table) SetAllowed(row, col int, v Value) {
	//lint:allow cacheinval construction-time write before the table is published to any cache
	t.rows[row][col] = v
}

// ReadOnly never mutates; nothing to check.
func (t *Table) ReadOnly(row, col int) Value {
	return t.rows[row][col]
}
