// Package core is cacheinval testdata for the session side: its import
// path ends in internal/core, so its Session repair configuration
// (dcs / alg) is guarded, with the cross-package Engine.InvalidateCache
// barrier from the real exec package.
package core

import "repro/internal/exec"

// Session pairs a constraint set with an algorithm name.
type Session struct {
	dcs    []string
	alg    string
	engine *exec.Engine
}

// SwapDCsGood replaces the constraint set and drops the caches keyed on
// the old one through the real cross-package barrier.
func (s *Session) SwapDCsGood(dcs []string) {
	s.dcs = dcs
	s.engine.InvalidateCache()
}

// SwapDCsBad replaces the constraint set and keeps serving stale cache
// entries.
func (s *Session) SwapDCsBad(dcs []string) {
	s.dcs = dcs // want "the session repair configuration .s.dcs. is mutated but not every path to return passes cache invalidation"
}

// SetAlgBad swaps the black box without invalidating.
func (s *Session) SetAlgBad(alg string) {
	s.alg = alg // want "the session repair configuration .s.alg. is mutated but not every path to return passes cache invalidation"
}

// SwapDCsAllowed documents why the write is safe.
func (s *Session) SwapDCsAllowed(dcs []string) {
	//lint:allow cacheinval constructor path: no cache exists before the session is returned
	s.dcs = dcs
}
