// Package core is cacheinval testdata for the session side: its import
// path ends in internal/core, so its Session repair configuration
// (dcs / alg) is guarded, with the cross-package Engine.InvalidateCache
// barrier from the real exec package. Constraint-set mutations owe a
// second barrier — the plan refresh surface (Session.refreshPlan /
// PlanCache.Clear) — which Engine.InvalidateCache deliberately does not
// satisfy.
package core

import "repro/internal/exec"

// Session pairs a constraint set with an algorithm name.
type Session struct {
	dcs    []string
	alg    string
	engine *exec.Engine
}

// refreshPlan recompiles the session's constraint-set plan; it is the
// session-level half of the plan refresh surface.
func (s *Session) refreshPlan() {
	s.engine.Plans().Clear()
}

// SwapDCsGood replaces the constraint set, drops the caches keyed on the
// old one through the real cross-package barrier, and recompiles the plan.
func (s *Session) SwapDCsGood(dcs []string) {
	s.dcs = dcs
	s.engine.InvalidateCache()
	s.refreshPlan()
}

// SwapDCsBad replaces the constraint set and keeps serving stale cache
// entries and a stale plan: both obligations are reported.
func (s *Session) SwapDCsBad(dcs []string) {
	s.dcs = dcs // want "the session repair configuration .s.dcs. is mutated but not every path to return passes cache invalidation" "the session repair configuration .s.dcs. is mutated but not every path to return recompiles the constraint-set plan"
}

// SetAlgBad swaps the black box without invalidating or replanning.
func (s *Session) SetAlgBad(alg string) {
	s.alg = alg // want "the session repair configuration .s.alg. is mutated but not every path to return passes cache invalidation" "the session repair configuration .s.alg. is mutated but not every path to return recompiles the constraint-set plan"
}

// SwapDCsStalePlan invalidates the coalition caches but leaves the
// compiled plan stale — InvalidateCache is not a plan barrier.
func (s *Session) SwapDCsStalePlan(dcs []string) {
	s.dcs = dcs // want "the session repair configuration .s.dcs. is mutated but not every path to return recompiles the constraint-set plan"
	s.engine.InvalidateCache()
}

// SwapDCsPlanOnly recompiles the plan but never drops the coalition
// caches — the original obligation still stands.
func (s *Session) SwapDCsPlanOnly(dcs []string) {
	s.dcs = dcs // want "the session repair configuration .s.dcs. is mutated but not every path to return passes cache invalidation"
	s.refreshPlan()
}

// SwapDCsCacheClear satisfies the plan obligation through the exec-side
// half of the surface (PlanCache.Clear) plus the cache barrier.
func (s *Session) SwapDCsCacheClear(dcs []string) {
	s.dcs = dcs
	s.engine.InvalidateCache()
	s.engine.Plans().Clear()
}

// SwapDCsBranchy recompiles on only one branch: the fall-through return
// publishes a stale plan.
func (s *Session) SwapDCsBranchy(dcs []string, replan bool) {
	s.dcs = dcs // want "the session repair configuration .s.dcs. is mutated but not every path to return recompiles the constraint-set plan"
	s.engine.InvalidateCache()
	if replan {
		s.refreshPlan()
	}
}

// SwapDCsDeferred covers both obligations with deferred barriers, which
// run on every exit path.
func (s *Session) SwapDCsDeferred(dcs []string) {
	defer s.engine.InvalidateCache()
	defer s.refreshPlan()
	s.dcs = dcs
}

// swapVia is a same-package helper that transitively refreshes the plan;
// callers crossing it are covered by the dataflow summaries.
func (s *Session) swapVia() {
	s.engine.InvalidateCache()
	s.refreshPlan()
}

// SwapDCsHelper reaches both surfaces through a same-package helper.
func (s *Session) SwapDCsHelper(dcs []string) {
	s.dcs = dcs
	s.swapVia()
}

// SwapDCsAllowed documents why the write is safe.
func (s *Session) SwapDCsAllowed(dcs []string) {
	//lint:allow cacheinval constructor path: no cache exists before the session is returned
	s.dcs = dcs
}
