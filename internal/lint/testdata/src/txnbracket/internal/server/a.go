// Package server is txnbracket testdata outside the internal/core scope:
// other packages' Explainer-shaped types are not entry points.
package server

import "context"

// Explainer is an unrelated type that happens to share the name.
type Explainer struct{}

// Handle takes a context but lives outside internal/core.
func (e *Explainer) Handle(ctx context.Context) error { return ctx.Err() }
