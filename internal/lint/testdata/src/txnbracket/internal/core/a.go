// Package core is txnbracket testdata: a stand-in Explainer whose
// exported context-taking entry points must open with the cache
// transaction bracket.
package core

import "context"

// Explainer mirrors the real core.Explainer's entry-point discipline.
type Explainer struct {
	entryOpen bool
}

func (e *Explainer) begin() bool {
	if e.entryOpen {
		return false
	}
	e.entryOpen = true
	return true
}

func (e *Explainer) finishEntry(owned bool, errp *error) {
	if owned {
		e.entryOpen = false
	}
}

// Bracketed is the canonical shape.
func (e *Explainer) Bracketed(ctx context.Context) (err error) {
	defer e.finishEntry(e.begin(), &err)
	return ctx.Err()
}

// BracketedNamedResults works with blank-named extra results.
func (e *Explainer) BracketedNamedResults(ctx context.Context) (_ int, err error) {
	defer e.finishEntry(e.begin(), &err)
	return 1, ctx.Err()
}

// Missing lacks the bracket entirely.
func (e *Explainer) Missing(ctx context.Context) error { // want "entry point Missing takes a context but does not open with"
	return ctx.Err()
}

// LateBracket defers the bracket too late: a store before it would be
// unprotected.
func (e *Explainer) LateBracket(ctx context.Context) (err error) { // want "entry point LateBracket takes a context"
	if ctx == nil {
		return nil
	}
	defer e.finishEntry(e.begin(), &err)
	return nil
}

// WrongErr brackets a local, not the named error result.
func (e *Explainer) WrongErr(ctx context.Context) error { // want "entry point WrongErr takes a context"
	var err error
	defer e.finishEntry(e.begin(), &err)
	_ = ctx
	return err
}

// Delegates is a thin wrapper; the delegate carries the bracket.
func (e *Explainer) Delegates(ctx context.Context) error {
	return e.Bracketed(ctx)
}

// NoContext constructs state without touching the engine.
func (e *Explainer) NoContext() bool { return e.entryOpen }

// unexported helpers are not entry points.
func (e *Explainer) helper(ctx context.Context) error { return ctx.Err() }

// Allowed carries a justification and is suppressed.
func (e *Explainer) Allowed(ctx context.Context) error { //lint:allow txnbracket read-only path, provably never stages a cache write
	return ctx.Err()
}
