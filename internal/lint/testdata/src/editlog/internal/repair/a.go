// Package repair is editlog testdata: any package other than
// internal/table is in scope.
package repair

import (
	"slices"

	"repro/internal/table"
)

// BadDirectView writes through RowView's read-only alias.
func BadDirectView(t *table.Table, v table.Value) {
	t.RowView(0)[1] = v // want "obtained from Table.RowView"
}

// BadNamedView stores the view first; provenance is traced through the
// local definition.
func BadNamedView(t *table.Table, v table.Value) {
	row := t.RowView(0)
	row[0] = v // want "obtained from Table.RowView"
}

// BadUnknownRow mutates a row of unknown provenance (a parameter may
// alias live storage).
func BadUnknownRow(row []table.Value, v table.Value) {
	row[0] = v // want "no local allocation in sight"
}

// GoodFresh builds and fills a fresh row; nothing aliases a table.
func GoodFresh(v table.Value) []table.Value {
	fresh := make([]table.Value, 3)
	fresh[0] = v
	return fresh
}

// GoodCopies mutates copies: Table.Row and slices.Clone both allocate.
func GoodCopies(t *table.Table, row []table.Value, v table.Value) {
	mine := t.Row(0)
	mine[0] = v
	dup := slices.Clone(row)
	dup[1] = v
}

// GoodSetPath mutates through the sanctioned write path.
func GoodSetPath(t *table.Table, v table.Value) {
	t.Set(0, 0, v)
	t.SetRef(table.CellRef{Row: 0, Col: 1}, v)
}

// Allowed carries a justification and is suppressed.
func Allowed(row []table.Value, v table.Value) {
	//lint:allow editlog row is a pooled scratch buffer owned by this pass, never table storage
	row[0] = v
}

// BadGridReplace overwrites a row slot of a grid of unknown provenance —
// the raw form of an unlogged structural edit.
func BadGridReplace(grid [][]table.Value, row []table.Value) {
	grid[0] = row // want "structural write .*no local allocation in sight"
}

// BadGridSwapDelete hand-rolls the swap-delete: both slot writes bypass
// the typed log.
func BadGridSwapDelete(grid [][]table.Value, i int) {
	last := len(grid) - 1
	grid[i], grid[last] = grid[last], grid[i] // want "structural write" "structural write"
	_ = grid[:last]
}

// GoodFreshGrid fills a locally allocated grid; no table aliases it.
func GoodFreshGrid(row []table.Value) [][]table.Value {
	grid := make([][]table.Value, 2)
	grid[0] = row
	grid[1] = slices.Clone(row)
	return grid
}

// GoodClonedOuter mutates slots of a cloned outer slice: the rows still
// alias, but the slot array is fresh, so no structural storage changes.
func GoodClonedOuter(grid [][]table.Value, row []table.Value) {
	mine := slices.Clone(grid)
	mine[0] = row
}

// GoodStructuralPath mutates through the sanctioned structural writes.
func GoodStructuralPath(t *table.Table, row []table.Value) {
	_ = t.Append(row)
	t.DeleteRow(0)
}

// AllowedGrid carries a justification and is suppressed.
func AllowedGrid(grid [][]table.Value, row []table.Value) {
	//lint:allow editlog grid is this pass's private scratch, never table storage
	grid[0] = row
}
