// Package repair is editlog testdata: any package other than
// internal/table is in scope.
package repair

import (
	"slices"

	"repro/internal/table"
)

// BadDirectView writes through RowView's read-only alias.
func BadDirectView(t *table.Table, v table.Value) {
	t.RowView(0)[1] = v // want "obtained from Table.RowView"
}

// BadNamedView stores the view first; provenance is traced through the
// local definition.
func BadNamedView(t *table.Table, v table.Value) {
	row := t.RowView(0)
	row[0] = v // want "obtained from Table.RowView"
}

// BadUnknownRow mutates a row of unknown provenance (a parameter may
// alias live storage).
func BadUnknownRow(row []table.Value, v table.Value) {
	row[0] = v // want "no local allocation in sight"
}

// GoodFresh builds and fills a fresh row; nothing aliases a table.
func GoodFresh(v table.Value) []table.Value {
	fresh := make([]table.Value, 3)
	fresh[0] = v
	return fresh
}

// GoodCopies mutates copies: Table.Row and slices.Clone both allocate.
func GoodCopies(t *table.Table, row []table.Value, v table.Value) {
	mine := t.Row(0)
	mine[0] = v
	dup := slices.Clone(row)
	dup[1] = v
}

// GoodSetPath mutates through the sanctioned write path.
func GoodSetPath(t *table.Table, v table.Value) {
	t.Set(0, 0, v)
	t.SetRef(table.CellRef{Row: 0, Col: 1}, v)
}

// Allowed carries a justification and is suppressed.
func Allowed(row []table.Value, v table.Value) {
	//lint:allow editlog row is a pooled scratch buffer owned by this pass, never table storage
	row[0] = v
}
