// Package table is editlog testdata for the scope exemption: the storage
// owner writes cells directly by design.
package table

import "repro/internal/table"

// InsideStorageOwner writes a row directly; internal/table is exempt.
func InsideStorageOwner(row []table.Value, v table.Value) {
	row[0] = v
}
