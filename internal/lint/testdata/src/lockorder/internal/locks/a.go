// Package locks is lockorder testdata: acquisition-order cycles,
// self-deadlocks, and the shapes that must stay silent.
package locks

import "sync"

// Registry holds the a→b / b→a cycle pair.
type Registry struct {
	a sync.Mutex
	b sync.Mutex
}

// First acquires b while holding a: the a→b edge. The cycle anchored at
// locks.Registry.a is reported here.
func (r *Registry) First() {
	r.a.Lock()
	r.b.Lock() // want "lock order cycle: locks.Registry.a -> locks.Registry.b -> locks.Registry.a"
	r.b.Unlock()
	r.a.Unlock()
}

// Second closes the cycle with the b→a edge.
func (r *Registry) Second() {
	r.b.Lock()
	r.a.Lock()
	r.a.Unlock()
	r.b.Unlock()
}

// Sequential releases before the next acquisition: no edge, no report.
func (r *Registry) Sequential() {
	r.b.Lock()
	r.b.Unlock()
	r.a.Lock()
	r.a.Unlock()
}

// Deferred holds the c→d pair with a deferred unlock: for ordering
// purposes c stays held until exit, so the edge exists.
type Deferred struct {
	c sync.Mutex
	d sync.Mutex
}

// HoldAcross defers the unlock of c, then takes d: the c→d edge.
func (p *Deferred) HoldAcross() {
	p.c.Lock()
	defer p.c.Unlock()
	p.d.Lock() // want "lock order cycle: locks.Deferred.c -> locks.Deferred.d -> locks.Deferred.c"
	p.d.Unlock()
}

// Inverse closes the Deferred cycle.
func (p *Deferred) Inverse() {
	p.d.Lock()
	p.c.Lock()
	p.c.Unlock()
	p.d.Unlock()
}

// global is a package-level mutex; re-acquiring it while held is a
// self-deadlock.
var global sync.Mutex

// SelfDeadlock re-locks the mutex it already holds.
func SelfDeadlock() {
	global.Lock()
	global.Lock() // want "mutex locks.global acquired while already held"
	global.Unlock()
	global.Unlock()
}

// rw is shared-mode testdata: nested read locks are legal.
var rw sync.RWMutex

// ReadTwice nests two read acquisitions; shared mode never
// self-deadlocks.
func ReadTwice() int {
	rw.RLock()
	rw.RLock()
	rw.RUnlock()
	rw.RUnlock()
	return 0
}

// LocalPair orders two function-local mutexes; each call owns distinct
// instances, so cross-function ordering is meaningless and excluded.
func LocalPair() {
	var mu, mu2 sync.Mutex
	mu.Lock()
	mu2.Lock()
	mu2.Unlock()
	mu.Unlock()
	mu2.Lock()
	mu.Lock()
	mu.Unlock()
	mu2.Unlock()
}

// shardA and shardB carry a justified cycle: the allow directive keeps
// the pair out of the report.
var shardA, shardB sync.Mutex

// AllowedForward takes shardB under shardA with a reviewed reason.
func AllowedForward() {
	shardA.Lock()
	//lint:allow lockorder shard pair is striped by key: no goroutine takes both for the same key
	shardB.Lock()
	shardB.Unlock()
	shardA.Unlock()
}

// AllowedBackward is the other half of the justified cycle.
func AllowedBackward() {
	shardB.Lock()
	//lint:allow lockorder shard pair is striped by key: no goroutine takes both for the same key
	shardA.Lock()
	shardA.Unlock()
	shardB.Unlock()
}
