// Package data is detmap testdata outside the deterministic scope: map
// ranges here are not findings.
package data

// OutOfScope ranges a map in a package the determinism contract does not
// cover.
func OutOfScope(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
