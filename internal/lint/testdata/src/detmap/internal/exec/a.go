// Package exec is detmap testdata: its import-path suffix places it in
// the deterministic fan-out scope.
package exec

import "sort"

// Bad iterates a map with an order-sensitive body.
func Bad(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "range over map map\\[string\\]int iterates in nondeterministic order"
		out = append(out, v*2)
	}
	return out
}

// BadKeysOnly is nondeterministic even ranging keys alone.
func BadKeysOnly(m map[string]int, sink func(string)) {
	for k := range m { // want "range over map"
		sink(k)
	}
}

// GoodSorted uses the sorted-keys idiom: the collection loop is exempt,
// the ordered loop ranges a slice.
func GoodSorted(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []int
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// GoodSlice ranges a slice, out of the analyzer's reach.
func GoodSlice(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Allowed carries a justification and is suppressed.
func Allowed(m map[string]int) int {
	total := 0
	//lint:allow detmap summation is commutative, order cannot affect the result
	for _, v := range m {
		total += v
	}
	return total
}
