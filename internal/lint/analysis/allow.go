package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive. The full form is
//
//	//lint:allow <analyzer> <reason>
//
// placed either at the end of the offending line or on its own line
// immediately above it. The reason is mandatory: an allowlisted site must
// say why the invariant does not apply (e.g. "publication order is
// absorbed by keyed cache stores"), so every suppression is a reviewed,
// greppable decision rather than a silent opt-out.
const allowPrefix = "lint:allow"

// allowEntry is one parsed directive.
type allowEntry struct {
	analyzer string
}

// Suppressions indexes every well-formed //lint:allow directive of a
// package by (file, line), and retains a diagnostic for every malformed
// one (missing analyzer name or missing reason).
type Suppressions struct {
	// byLine maps file name → line → analyzers allowed there. A directive
	// on line L suppresses matching diagnostics on L and L+1, covering
	// both the trailing-comment and the line-above placement.
	byLine    map[string]map[int][]allowEntry
	malformed []Diagnostic
}

// CollectSuppressions parses the //lint:allow directives of files.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byLine: make(map[string]map[int][]allowEntry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed directive: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]allowEntry)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], allowEntry{analyzer: name})
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic of analyzer name at pos is
// covered by a directive on its line or the line above.
func (s *Suppressions) Suppressed(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	lines := s.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, e := range lines[line] {
			if e.analyzer == name {
				return true
			}
		}
	}
	return false
}

// Malformed returns a diagnostic per syntactically invalid directive.
func (s *Suppressions) Malformed() []Diagnostic { return s.malformed }
