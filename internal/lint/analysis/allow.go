package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// allowPrefix introduces a suppression directive. The full form is
//
//	//lint:allow <analyzer> <reason>
//
// placed either at the end of the offending line or on its own line
// immediately above it. The reason is mandatory: an allowlisted site must
// say why the invariant does not apply (e.g. "publication order is
// absorbed by keyed cache stores"), so every suppression is a reviewed,
// greppable decision rather than a silent opt-out.
const allowPrefix = "lint:allow"

// allowEntry is one parsed directive.
type allowEntry struct {
	analyzer string
	// pos is the directive comment's position, used to report stale
	// directives.
	pos token.Pos
	// used flips when the entry suppresses at least one diagnostic; a
	// directive that never fires is stale (see Stale) — after a refactor
	// moves or fixes the offending code, the suppression must not rot in
	// place silently re-enabled for whatever lands on that line next.
	used bool
}

// Suppressions indexes every well-formed //lint:allow directive of a
// package by (file, line), and retains a diagnostic for every malformed
// one (missing analyzer name or missing reason).
type Suppressions struct {
	// byLine maps file name → line → analyzers allowed there. A directive
	// on line L suppresses matching diagnostics on L and L+1, covering
	// both the trailing-comment and the line-above placement.
	byLine    map[string]map[int][]*allowEntry
	malformed []Diagnostic
}

// CollectSuppressions parses the //lint:allow directives of files.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byLine: make(map[string]map[int][]*allowEntry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed directive: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*allowEntry)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], &allowEntry{analyzer: name, pos: c.Pos()})
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic of analyzer name at pos is
// covered by a directive on its line or the line above.
func (s *Suppressions) Suppressed(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	lines := s.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, e := range lines[line] {
			if e.analyzer == name {
				e.used = true
				return true
			}
		}
	}
	return false
}

// Malformed returns a diagnostic per syntactically invalid directive.
func (s *Suppressions) Malformed() []Diagnostic { return s.malformed }

// Stale returns a diagnostic for every directive that suppressed nothing
// over a completed run. known is the set of analyzer names that actually
// ran: a directive naming an analyzer outside the run is not judged (a
// single-analyzer harness must not condemn another analyzer's
// suppressions), but a directive naming an analyzer no suite knows at
// all is reported as unknown — it can never fire and is a typo by
// construction. Call only after every analyzer in known has reported.
func (s *Suppressions) Stale(known map[string]bool, all map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, lines := range s.byLine {
		for _, entries := range lines {
			for _, e := range entries {
				switch {
				case e.used:
				case !all[e.analyzer]:
					out = append(out, Diagnostic{
						Pos:     e.pos,
						Message: "//lint:allow names unknown analyzer " + strconv.Quote(e.analyzer),
					})
				case known[e.analyzer]:
					out = append(out, Diagnostic{
						Pos:     e.pos,
						Message: "stale //lint:allow " + e.analyzer + ": no " + e.analyzer + " diagnostic on this or the next line; remove the directive (suppressions must not outlive the finding they justified)",
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
