package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestCollectSuppressionsPlacement(t *testing.T) {
	src := `package p

func f() {
	//lint:allow detmap keyed store, order-insensitive
	g()
	h() //lint:allow seededrand telemetry only
	i()
}
`
	fset, f := parse(t, src)
	s := CollectSuppressions(fset, []*ast.File{f})
	if len(s.Malformed()) != 0 {
		t.Fatalf("unexpected malformed directives: %v", s.Malformed())
	}
	posOn := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	// Directive on line 4 covers lines 4 and 5.
	if !s.Suppressed(fset, "detmap", posOn(4)) || !s.Suppressed(fset, "detmap", posOn(5)) {
		t.Error("line-above directive did not suppress its line and the next")
	}
	// Trailing directive on line 6 covers line 6.
	if !s.Suppressed(fset, "seededrand", posOn(6)) {
		t.Error("trailing directive did not suppress its own line")
	}
	// Wrong analyzer name, wrong line: not suppressed.
	if s.Suppressed(fset, "seededrand", posOn(5)) {
		t.Error("directive suppressed a different analyzer")
	}
	if s.Suppressed(fset, "detmap", posOn(7)) {
		t.Error("directive leaked two lines down")
	}
	if s.Suppressed(fset, "detmap", posOn(3)) {
		t.Error("directive leaked one line up")
	}
}

func TestCollectSuppressionsMalformed(t *testing.T) {
	src := `package p

//lint:allow detmap
func f() {}

//lint:allow
func g() {}
`
	fset, f := parse(t, src)
	s := CollectSuppressions(fset, []*ast.File{f})
	m := s.Malformed()
	if len(m) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2: %v", len(m), m)
	}
	for _, d := range m {
		if !strings.Contains(d.Message, "want //lint:allow <analyzer> <reason>") {
			t.Errorf("unexpected malformed message: %s", d.Message)
		}
	}
	// A reasonless directive must not suppress anything.
	if s.Suppressed(fset, "detmap", fset.File(f.Pos()).LineStart(4)) {
		t.Error("reasonless directive acted as a suppression")
	}
}

func TestSuppressedUnknownFile(t *testing.T) {
	fset, f := parse(t, "package p\n")
	s := CollectSuppressions(fset, []*ast.File{f})
	if s.Suppressed(fset, "detmap", f.Pos()) {
		t.Error("empty suppression set suppressed a diagnostic")
	}
}

func TestReportfAndInspect(t *testing.T) {
	fset, f := parse(t, "package p\n\nfunc f() {}\n\nfunc g() {}\n")
	var got []Diagnostic
	p := &Pass{
		Fset:   fset,
		Files:  []*ast.File{f},
		Report: func(d Diagnostic) { got = append(got, d) },
	}
	funcs := 0
	p.Inspect(func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok {
			funcs++
			p.Reportf(fd.Pos(), "func %s at index %d", fd.Name.Name, funcs)
		}
		return true
	})
	if funcs != 2 {
		t.Fatalf("Inspect visited %d FuncDecls, want 2", funcs)
	}
	if len(got) != 2 || got[0].Message != "func f at index 1" || got[1].Message != "func g at index 2" {
		t.Fatalf("Reportf diagnostics wrong: %v", got)
	}
}
