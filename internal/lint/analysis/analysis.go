// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The build environment for this repository is hermetic — no module proxy,
// no vendored third-party code — so the canonical x/tools framework is not
// importable. This package mirrors its core API surface (Analyzer, Pass,
// Diagnostic, Pass.Reportf) closely enough that the trexlint analyzers
// could be ported to the real framework by changing one import path, while
// staying entirely on the standard library (go/ast, go/types, go/token).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name is the identifier used in
// diagnostics and in //lint:allow suppression directives; Doc is the
// one-paragraph contract shown by `trexlint -help`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Pass is one analyzer's view of one type-checked package: the syntax, the
// type information, and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file of the pass in depth-first order, calling f for
// each node; f returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
