package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// hotPathPrefix marks an allocation-free root. The directive is placed in
// (or directly above) a function's doc comment:
//
//	//lint:hotpath
//	func (b *Binding) Lookup(coalition []bool) (float64, uint64, bool) { ... }
//
// Unlike //lint:allow it carries no reason — it is a contract opt-in, not
// a suppression: the function and everything statically reachable from it
// inside the package becomes subject to the allocfree analyzer.
const hotPathPrefix = "lint:hotpath"

// CollectHotPathRoots returns the function declarations marked with a
// //lint:hotpath directive, in source order per file. A directive marks
// the function whose declaration it documents: any line of the doc
// comment group, or the line immediately above the func keyword, counts.
func CollectHotPathRoots(fset *token.FileSet, files []*ast.File) []*ast.FuncDecl {
	// Index directive lines per file.
	lines := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != hotPathPrefix && !strings.HasPrefix(text, hotPathPrefix+" ") {
					continue
				}
				pos := fset.Position(c.Pos())
				if lines[pos.Filename] == nil {
					lines[pos.Filename] = make(map[int]bool)
				}
				lines[pos.Filename][pos.Line] = true
			}
		}
	}
	var roots []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			pos := fset.Position(fd.Pos())
			fileLines := lines[pos.Filename]
			if fileLines == nil {
				continue
			}
			marked := fileLines[pos.Line-1]
			if fd.Doc != nil {
				from := fset.Position(fd.Doc.Pos()).Line
				for l := from; l < pos.Line && !marked; l++ {
					marked = fileLines[l]
				}
			}
			if marked {
				roots = append(roots, fd)
			}
		}
	}
	return roots
}
