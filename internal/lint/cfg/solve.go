package cfg

import (
	"go/ast"
	"sort"
)

// Lattice is the join-semilattice a forward dataflow problem runs over.
// Facts are opaque to the solver; Bottom is the "no information" value
// every block starts from, Join computes the least upper bound of two
// facts at a control-flow merge, and Equal detects the fixpoint.
//
// Join must be monotone and idempotent or the worklist will not
// terminate; keeping fact domains finite (bounded sets, booleans) is the
// caller's responsibility.
type Lattice interface {
	Bottom() any
	Join(a, b any) any
	Equal(a, b any) bool
}

// Solution holds the fixpoint facts of one Solve run: In[b] is the fact
// at b's entry (the join over predecessors' Out, and the seed for seeded
// blocks), Out[b] the fact after b's transfer function.
type Solution struct {
	In  map[*Block]any
	Out map[*Block]any
}

// Solve runs a forward worklist iteration over g to fixpoint. transfer
// maps a block's entry fact to its exit fact (it must not mutate the
// input fact — return a fresh or shared immutable value). seeds, when
// non-nil, joins extra initial facts into the named blocks' entries —
// the entry block for whole-function problems, a loop head for
// loop-local ones. Blocks are processed in index order for deterministic
// fact construction.
func Solve(g *Graph, lat Lattice, transfer func(b *Block, in any) any, seeds map[*Block]any) *Solution {
	sol := &Solution{In: make(map[*Block]any, len(g.Blocks)), Out: make(map[*Block]any, len(g.Blocks))}
	for _, b := range g.Blocks {
		sol.In[b] = lat.Bottom()
		sol.Out[b] = lat.Bottom()
	}
	for b, f := range seeds {
		sol.In[b] = lat.Join(sol.In[b], f)
	}

	// Deterministic worklist: a sorted index set.
	inList := make([]bool, len(g.Blocks)+1)
	var list []*Block
	push := func(b *Block) {
		if !inList[b.Index] {
			inList[b.Index] = true
			list = append(list, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}
	for len(list) > 0 {
		sort.Slice(list, func(i, j int) bool { return list[i].Index < list[j].Index })
		b := list[0]
		list = list[1:]
		inList[b.Index] = false

		in := sol.In[b]
		for _, p := range b.Preds {
			in = lat.Join(in, sol.Out[p])
		}
		if seed, ok := seeds[b]; ok {
			in = lat.Join(in, seed)
		}
		sol.In[b] = in
		out := transfer(b, in)
		if !lat.Equal(out, sol.Out[b]) {
			sol.Out[b] = out
			for _, s := range b.Succs {
				push(s)
			}
		}
	}
	return sol
}

// EveryPathHits reports whether every path from just after node index i
// of block b to the function exit passes a node for which barrier
// returns true. It is the post-dominance predicate the cacheinval
// analyzer uses: "is this mutation always followed by an invalidation
// call before the function can return?"
//
// Paths that loop forever without reaching Exit are vacuously covered.
// Note that a *ast.RangeStmt node in a range head syntactically contains
// its whole body; barrier predicates must match on the node itself (or
// on head-resident parts like the range expression), not on arbitrary
// subtree content, to avoid crediting body-resident calls to the head.
func (g *Graph) EveryPathHits(b *Block, i int, barrier func(ast.Node) bool) bool {
	for _, n := range b.Nodes[i+1:] {
		if barrier(n) {
			return true
		}
	}
	leaky := g.leakyBlocks(barrier)
	for _, s := range b.Succs {
		if leaky[s] {
			return false
		}
	}
	return true
}

// leakyBlocks computes the set of blocks from which Exit is reachable
// without traversing any barrier node: entering such a block means some
// continuation escapes to Exit uncovered. Computed by reverse BFS from
// Exit over barrier-free blocks.
func (g *Graph) leakyBlocks(barrier func(ast.Node) bool) map[*Block]bool {
	clean := func(b *Block) bool {
		for _, n := range b.Nodes {
			if barrier(n) {
				return false
			}
		}
		return true
	}
	leaky := map[*Block]bool{g.Exit: true}
	queue := []*Block{g.Exit}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, p := range b.Preds {
			if !leaky[p] && clean(p) {
				leaky[p] = true
				queue = append(queue, p)
			}
		}
	}
	return leaky
}

// CycleAvoiding reports whether some cycle through head exists that
// traverses no node satisfying check — i.e. whether an iteration of the
// loop rooted at head can complete without passing a check node. This is
// the ctxflow analyzer's back-edge predicate: with check matching
// context polls, a true result means a loop iteration can run
// check-free.
//
// The search walks forward from head's successors through check-free
// blocks only; reaching head again closes an unchecked cycle. Blocks
// containing a check node absorb every path through them.
func (g *Graph) CycleAvoiding(head *Block, check func(ast.Node) bool) bool {
	hasCheck := func(b *Block) bool {
		for _, n := range b.Nodes {
			if check(n) {
				return true
			}
		}
		return false
	}
	if hasCheck(head) {
		return false // every iteration re-enters the head
	}
	seen := make(map[*Block]bool)
	var stack []*Block
	for _, s := range head.Succs {
		if s == head {
			return true // self-loop with no check
		}
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if hasCheck(b) {
			continue
		}
		for _, s := range b.Succs {
			if s == head {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}
