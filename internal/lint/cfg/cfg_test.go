package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody wraps src in a function and returns its body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\n\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// callsTo returns a predicate matching nodes whose subtree calls the
// named function, honoring the range-head restriction documented on
// EveryPathHits.
func callsTo(name string) func(ast.Node) bool {
	var pred func(ast.Node) bool
	pred = func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			return r.X != nil && pred(r.X)
		}
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return pred
}

// siteOf locates the block and node index of the first node satisfying
// pred.
func siteOf(t *testing.T, g *Graph, pred func(ast.Node) bool) (*Block, int) {
	t.Helper()
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if pred(n) {
				return b, i
			}
		}
	}
	t.Fatal("site not found in any block")
	return nil, 0
}

func TestStraightLineGraph(t *testing.T) {
	g := New(parseBody(t, "x := 1\ny := x\n_ = y"))
	if g.Entry == nil || g.Exit == nil {
		t.Fatal("missing entry/exit")
	}
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry has %d nodes, want 3: %s", len(g.Entry.Nodes), g)
	}
	if len(g.Loops) != 0 {
		t.Errorf("straight line reported %d loops", len(g.Loops))
	}
	// The only path must reach Exit.
	found := false
	for _, s := range g.Entry.Succs {
		if s == g.Exit {
			found = true
		}
	}
	if !found {
		t.Errorf("entry does not reach exit directly: %s", g)
	}
}

func TestEveryPathHitsBothArms(t *testing.T) {
	g := New(parseBody(t, `
mutate()
if cond() {
	barrier()
} else {
	barrier()
}
`))
	b, i := siteOf(t, g, callsTo("mutate"))
	if !g.EveryPathHits(b, i, callsTo("barrier")) {
		t.Errorf("both arms barriered, want covered: %s", g)
	}
}

func TestEveryPathHitsOneArmLeaks(t *testing.T) {
	g := New(parseBody(t, `
mutate()
if cond() {
	barrier()
}
`))
	b, i := siteOf(t, g, callsTo("mutate"))
	if g.EveryPathHits(b, i, callsTo("barrier")) {
		t.Errorf("fallthrough arm has no barrier, want uncovered: %s", g)
	}
}

func TestEveryPathHitsEarlyReturnLeaks(t *testing.T) {
	g := New(parseBody(t, `
mutate()
if cond() {
	return
}
barrier()
`))
	b, i := siteOf(t, g, callsTo("mutate"))
	if g.EveryPathHits(b, i, callsTo("barrier")) {
		t.Error("early return path skips the barrier, want uncovered")
	}
}

func TestEveryPathHitsSameBlockAfter(t *testing.T) {
	g := New(parseBody(t, "mutate()\nbarrier()"))
	b, i := siteOf(t, g, callsTo("mutate"))
	if !g.EveryPathHits(b, i, callsTo("barrier")) {
		t.Error("barrier later in the same block, want covered")
	}
}

func TestEveryPathHitsBarrierBeforeSiteDoesNotCount(t *testing.T) {
	g := New(parseBody(t, "barrier()\nmutate()"))
	b, i := siteOf(t, g, callsTo("mutate"))
	if g.EveryPathHits(b, i, callsTo("barrier")) {
		t.Error("barrier precedes the mutation, want uncovered")
	}
}

func TestLoopRecorded(t *testing.T) {
	g := New(parseBody(t, `
for i := 0; i < 10; i++ {
	work(i)
}
for range ch() {
	work(0)
}
`))
	if len(g.Loops) != 2 {
		t.Fatalf("got %d loops, want 2: %s", len(g.Loops), g)
	}
	if _, ok := g.Loops[0].Stmt.(*ast.ForStmt); !ok {
		t.Errorf("loop 0 is %T, want *ast.ForStmt", g.Loops[0].Stmt)
	}
	if _, ok := g.Loops[1].Stmt.(*ast.RangeStmt); !ok {
		t.Errorf("loop 1 is %T, want *ast.RangeStmt", g.Loops[1].Stmt)
	}
}

func TestCycleAvoidingUncheckedLoop(t *testing.T) {
	g := New(parseBody(t, `
for i := 0; i < 10; i++ {
	work(i)
}
`))
	if !g.CycleAvoiding(g.Loops[0].Head, callsTo("check")) {
		t.Error("no check anywhere, want an unchecked cycle")
	}
}

func TestCycleAvoidingUnconditionalCheck(t *testing.T) {
	g := New(parseBody(t, `
for i := 0; i < 10; i++ {
	check()
	work(i)
}
`))
	if g.CycleAvoiding(g.Loops[0].Head, callsTo("check")) {
		t.Error("check on every iteration, want no unchecked cycle")
	}
}

func TestCycleAvoidingSkippableCheck(t *testing.T) {
	g := New(parseBody(t, `
for i := 0; i < 10; i++ {
	if i%2 == 0 {
		check()
	}
	work(i)
}
`))
	if !g.CycleAvoiding(g.Loops[0].Head, callsTo("check")) {
		t.Error("check sits in a skippable branch, want an unchecked cycle")
	}
}

func TestCycleAvoidingContinueSkipsCheck(t *testing.T) {
	g := New(parseBody(t, `
for i := 0; i < 10; i++ {
	if i%2 == 0 {
		continue
	}
	check()
	work(i)
}
`))
	if !g.CycleAvoiding(g.Loops[0].Head, callsTo("check")) {
		t.Error("continue path bypasses the check, want an unchecked cycle")
	}
}

func TestSwitchAllCasesBarrier(t *testing.T) {
	g := New(parseBody(t, `
mutate()
switch mode() {
case 1:
	barrier()
default:
	barrier()
}
`))
	b, i := siteOf(t, g, callsTo("mutate"))
	if !g.EveryPathHits(b, i, callsTo("barrier")) {
		t.Error("every switch case barriered, want covered")
	}
}

func TestSwitchMissingDefaultLeaks(t *testing.T) {
	g := New(parseBody(t, `
mutate()
switch mode() {
case 1:
	barrier()
}
`))
	b, i := siteOf(t, g, callsTo("mutate"))
	if g.EveryPathHits(b, i, callsTo("barrier")) {
		t.Error("defaultless switch can fall through, want uncovered")
	}
}

func TestGraphString(t *testing.T) {
	g := New(parseBody(t, "if cond() {\n\twork(1)\n}"))
	s := g.String()
	if !strings.Contains(s, "(entry)") || !strings.Contains(s, "(exit)") || !strings.Contains(s, "(if.then)") {
		t.Errorf("String lacks the expected adjacency listing: %q", s)
	}
}

// gen is the classic reaching-assignment boolean lattice for Solve
// tests: the fact is "a call to gen() may have executed".
type mayGen struct{}

func (mayGen) Bottom() any       { return false }
func (mayGen) Join(a, b any) any { return a.(bool) || b.(bool) }
func (mayGen) Equal(a, b any) bool {
	return a.(bool) == b.(bool)
}

func TestSolveFixpoint(t *testing.T) {
	g := New(parseBody(t, `
if cond() {
	gen()
}
use()
`))
	pred := callsTo("gen")
	transfer := func(b *Block, in any) any {
		fact := in.(bool)
		for _, n := range b.Nodes {
			if pred(n) {
				fact = true
			}
		}
		return fact
	}
	sol := Solve(g, mayGen{}, transfer, nil)
	if got := sol.In[g.Exit].(bool); !got {
		t.Error("gen() may reach exit through the then-arm, want In[Exit]=true")
	}
	if got := sol.In[g.Entry].(bool); got {
		t.Error("nothing precedes entry, want In[Entry]=false")
	}
	// The use() block joins both the gen and non-gen paths: may-analysis
	// reports true there.
	ub, _ := siteOf(t, g, callsTo("use"))
	if got := sol.In[ub].(bool); !got {
		t.Error("join at use() loses the then-arm fact, want true")
	}
}

func TestSolveLoopTermination(t *testing.T) {
	g := New(parseBody(t, `
for i := 0; i < 10; i++ {
	if i == 3 {
		gen()
	}
}
use()
`))
	pred := callsTo("gen")
	transfer := func(b *Block, in any) any {
		fact := in.(bool)
		for _, n := range b.Nodes {
			if pred(n) {
				fact = true
			}
		}
		return fact
	}
	sol := Solve(g, mayGen{}, transfer, nil)
	if got := sol.In[g.Exit].(bool); !got {
		t.Error("loop-carried fact must reach exit, want true")
	}
}
