// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, for the flow-sensitive trexlint analyzers.
//
// The shape deliberately mirrors golang.org/x/tools/go/cfg — a Graph of
// basic Blocks holding statement/expression Nodes in execution order,
// connected by Succs/Preds edges — so a future port to the x/tools
// framework is an import swap. Beyond the x/tools surface it also records
// every loop (head block plus the syntactic for/range statement), because
// the back-edge checks in the ctxflow analyzer need loop identity, and it
// ships a forward worklist solver with a pluggable join lattice (Solve)
// plus the path predicate the cacheinval analyzer's post-dominance check
// is built on (EveryPathHits).
//
// Supported control flow: if/else, for (all three clauses), range,
// switch/type switch (with fallthrough), select, labeled statements,
// break/continue (labeled and bare), goto, return, and calls to panic,
// which terminate their block with an edge to Exit. defer and go
// statements appear as ordinary nodes in their block; analyzers that care
// about function-exit effects (a deferred invalidation call, say) scan
// for *ast.DeferStmt nodes explicitly.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Graph is the control-flow graph of one function body. Entry is the
// block execution starts in; Exit is the single synthetic block every
// return, panic and fall-off-the-end path reaches.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Loops records every for/range statement of the body, outermost
	// first in source order.
	Loops []*Loop
}

// Block is one basic block: a maximal sequence of nodes with one entry
// point and one exit point. Nodes holds statements and the condition
// expressions of if/for/switch in execution order.
type Block struct {
	Index int
	// Kind labels the construct that created the block ("entry", "exit",
	// "if.then", "for.head", "range.head", "switch.case", ...), for
	// debugging and tests.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Loop is one for/range statement: its syntactic node and the head block
// its back edges return to.
type Loop struct {
	// Stmt is the *ast.ForStmt or *ast.RangeStmt.
	Stmt ast.Stmt
	Head *Block
}

// String renders a compact adjacency listing for tests and debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "%d(%s):", blk.Index, blk.Kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&b, " %d", s.Index)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// builder carries the under-construction graph. cur is the block new
// nodes append to; nil while the current point is unreachable (after a
// return or an unconditional branch).
type builder struct {
	g   *Graph
	cur *Block
	// breaks and continues are the innermost-last stacks of branch
	// targets, each carrying the optional statement label.
	breaks    []branchTarget
	continues []branchTarget
	// labels maps a label name to the block its statement starts in
	// (created on first reference, so forward gotos resolve).
	labels map[string]*Block
	// fallthroughs is the stack of next-case body blocks inside switch
	// statements, for fallthrough resolution.
	fallthroughs []*Block
}

// branchTarget is one break/continue destination with its label ("" for
// the bare form's innermost target).
type branchTarget struct {
	label string
	block *Block
}

// New builds the control-flow graph of body. It never fails: constructs
// the builder does not model precisely are approximated conservatively
// (extra edges rather than missing ones).
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: make(map[string]*Block)}
	g.Entry = b.newBlock("entry")
	g.Exit = &Block{Kind: "exit"}
	b.cur = g.Entry
	b.stmtList(body.List)
	// Falling off the end of the body reaches Exit.
	b.jump(g.Exit)
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge links from → to.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target and marks the
// current point unreachable. No-op when already unreachable.
func (b *builder) jump(target *Block) {
	if b.cur != nil {
		edge(b.cur, target)
	}
	b.cur = nil
}

// startAt makes target the current block (the usual "join" move).
func (b *builder) startAt(target *Block) { b.cur = target }

// add appends a node to the current block, reviving an unreachable point
// into a fresh orphan block so nodes after a return are still in the
// graph (they just have no predecessors).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the enclosing label name when
// the statement is the body of a LabeledStmt ("" otherwise).
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, true)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.LabeledStmt:
		// The labeled statement starts its own block so goto/labeled
		// break/continue have a well-defined target.
		target := b.labelBlock(s.Label.Name)
		b.jump(target)
		b.startAt(target)
		b.stmt(s.Stmt, s.Label.Name)
	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt,
		// DeferStmt, EmptyStmt: straight-line nodes.
		b.add(s)
		if es, ok := s.(*ast.ExprStmt); ok && isPanicCall(es.X) {
			b.jump(b.g.Exit)
		}
	}
}

// isPanicCall reports whether e is a call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// labelBlock returns (creating on demand) the block a label names.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breaks, label); t != nil {
			b.jump(t)
		} else {
			b.cur = nil // malformed code; sever conservatively
		}
	case token.CONTINUE:
		if t := findTarget(b.continues, label); t != nil {
			b.jump(t)
		} else {
			b.cur = nil
		}
	case token.GOTO:
		b.jump(b.labelBlock(label))
	case token.FALLTHROUGH:
		if n := len(b.fallthroughs); n > 0 && b.fallthroughs[n-1] != nil {
			b.jump(b.fallthroughs[n-1])
		} else {
			b.cur = nil
		}
	}
}

// findTarget resolves a break/continue: the innermost entry for the bare
// form, the matching labeled entry otherwise.
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			if label == "" && stack[i].label != "" && stack[i].block == nil {
				continue // label-only placeholder (switch labels), keep looking
			}
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	condBlock := b.cur
	after := b.newBlock("if.done")

	thenBlock := b.newBlock("if.then")
	edge(condBlock, thenBlock)
	b.startAt(thenBlock)
	b.stmtList(s.Body.List)
	b.jump(after)

	if s.Else != nil {
		elseBlock := b.newBlock("if.else")
		edge(condBlock, elseBlock)
		b.startAt(elseBlock)
		b.stmt(s.Else, "")
		b.jump(after)
	} else {
		edge(condBlock, after)
	}
	b.startAt(after)
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.jump(head)
	b.startAt(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	after := b.newBlock("for.done")
	// continue goes to the post statement's block when present, else to
	// the head directly.
	contTarget := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		edge(post, head)
		contTarget = post
	}
	b.g.Loops = append(b.g.Loops, &Loop{Stmt: s, Head: head})

	body := b.newBlock("for.body")
	edge(head, body)
	if s.Cond != nil {
		edge(head, after)
	}
	b.pushLoop(label, after, contTarget)
	b.startAt(body)
	b.stmtList(s.Body.List)
	b.popLoop()
	b.jump(contTarget)
	b.startAt(after)
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	// The head holds the RangeStmt itself: the per-iteration key/value
	// assignment and the exhaustion test live there.
	head := b.newBlock("range.head")
	b.jump(head)
	b.startAt(head)
	b.add(s)
	head = b.cur
	after := b.newBlock("range.done")
	edge(head, after)
	b.g.Loops = append(b.g.Loops, &Loop{Stmt: s, Head: head})

	body := b.newBlock("range.body")
	edge(head, body)
	b.pushLoop(label, after, head)
	b.startAt(body)
	b.stmtList(s.Body.List)
	b.popLoop()
	b.jump(head)
	b.startAt(after)
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label: "", block: brk})
	b.continues = append(b.continues, branchTarget{label: "", block: cont})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
		b.continues = append(b.continues, branchTarget{label: label, block: cont})
	}
}

func (b *builder) popLoop() {
	b.breaks = popTargets(b.breaks)
	b.continues = popTargets(b.continues)
}

// popTargets removes the innermost bare target plus its optional labeled
// twin.
func popTargets(stack []branchTarget) []branchTarget {
	n := len(stack) - 1
	if n >= 0 && stack[n].label != "" {
		n--
	}
	return stack[:n]
}

// switchBody lowers the clause list shared by switch and type switch.
func (b *builder) switchBody(body *ast.BlockStmt, label string, typeSwitch bool) {
	if b.cur == nil {
		b.startAt(b.newBlock("switch.head"))
	}
	head := b.cur
	after := b.newBlock("switch.done")
	b.breaks = append(b.breaks, branchTarget{label: "", block: after})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label: label, block: after})
	}

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	// Pre-create the body blocks so fallthrough can reach forward.
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		if head != nil {
			edge(head, blocks[i])
		}
	}
	if !hasDefault && head != nil {
		edge(head, after)
	}
	for i, cc := range clauses {
		next := (*Block)(nil)
		if !typeSwitch && i+1 < len(clauses) {
			next = blocks[i+1]
		}
		b.fallthroughs = append(b.fallthroughs, next)
		b.startAt(blocks[i])
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		b.jump(after)
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
	}
	b.breaks = popTargets(b.breaks)
	b.startAt(after)
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	if b.cur == nil {
		b.startAt(b.newBlock("select.head"))
	}
	head := b.cur
	after := b.newBlock("select.done")
	b.breaks = append(b.breaks, branchTarget{label: "", block: after})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label: label, block: after})
	}
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		edge(head, blk)
		b.startAt(blk)
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(after)
	}
	b.breaks = popTargets(b.breaks)
	b.startAt(after)
}
