package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestDetMap(t *testing.T) {
	analysistest.Run(t, "testdata/src/detmap/internal/exec", "detmap/internal/exec", lint.DetMap, "sort")
}

func TestDetMapOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/detmap/internal/data", "detmap/internal/data", lint.DetMap)
}
