package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata/src/seededrand/internal/shapley", "seededrand/internal/shapley", lint.SeededRand, "math/rand", "time")
}

func TestSeededRandOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/seededrand/internal/bench", "seededrand/internal/bench", lint.SeededRand, "time")
}
