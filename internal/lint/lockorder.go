package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
	"repro/internal/lint/dataflow"
)

// LockOrder builds the package's mutex-acquisition-order graph and
// reports cycles. An edge A→B means some function acquires B (directly,
// or through a same-package callee per the dataflow summaries) while
// holding A; a cycle A→…→A is a potential deadlock — two goroutines
// entering the cycle at different points can each hold the lock the other
// needs.
//
// Held sets are tracked flow-sensitively per function with the CFG
// worklist solver (may-hold union join), so a lock released before the
// next acquisition creates no edge, while a lock held across a branch
// does on every arm. Mutexes are identified by dataflow labels
// (package.Type.field, package.var); function-local mutexes are excluded
// — each call owns a distinct instance, so cross-function ordering is
// meaningless for them. A length-one cycle (re-acquiring a label already
// held) is reported as a self-deadlock unless both operations are read
// locks.
//
// The analysis is per package: trexlint's vet mode analyzes one
// compilation unit at a time, and the lock hierarchies that matter here
// (cache shards in exec, session registries in server) are intra-package.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "reports cycles in the package's mutex acquisition-order graph",
	Run:  runLockOrder,
}

// lockEdge is one "acquired B while holding A" observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
	// read is true when both the held and the acquired operation are read
	// locks (only meaningful for self edges).
	read bool
}

// heldLattice is the may-hold set domain: maps label → read-only flag
// (false dominates: a write hold joins over a read hold).
type heldLattice struct{}

func (heldLattice) Bottom() any { return map[string]bool{} }

func (heldLattice) Join(a, b any) any {
	am, bm := a.(map[string]bool), b.(map[string]bool)
	if len(bm) == 0 {
		return am
	}
	out := make(map[string]bool, len(am)+len(bm))
	for l, r := range am {
		out[l] = r
	}
	for l, r := range bm {
		if have, ok := out[l]; !ok || (have && !r) {
			out[l] = r
		}
	}
	return out
}

func (heldLattice) Equal(a, b any) bool {
	am, bm := a.(map[string]bool), b.(map[string]bool)
	if len(am) != len(bm) {
		return false
	}
	for l, r := range am {
		if br, ok := bm[l]; !ok || br != r {
			return false
		}
	}
	return true
}

func runLockOrder(pass *analysis.Pass) (any, error) {
	g := dataflow.Build(pass.Fset, pass.Files, pass.TypesInfo, pass.Pkg)
	var edges []lockEdge
	for _, fn := range g.Funcs() {
		sum := g.SummaryOf(fn)
		if len(sum.Acquires) == 0 && len(sum.Calls) == 0 {
			continue
		}
		edges = append(edges, functionEdges(g, fn)...)
	}
	reportLockCycles(pass, edges)
	return nil, nil
}

// functionEdges runs the held-set analysis over one function and collects
// order edges.
func functionEdges(g *dataflow.Graph, fn *types.Func) []lockEdge {
	decl := g.DeclOf(fn)
	sum := g.SummaryOf(fn)
	graph := cfg.New(decl.Body)

	// Index this function's lock operations by position for node scans.
	acquires := make(map[token.Pos]dataflow.Acquire)
	for _, a := range sum.Acquires {
		acquires[a.Pos] = a
	}
	releases := make(map[token.Pos]dataflow.Acquire)
	for _, r := range sum.Releases {
		releases[r.Pos] = r
	}

	var edges []lockEdge
	emit := func(held map[string]bool, to string, pos token.Pos, toRead bool) {
		for from, fromRead := range held {
			if strings.HasPrefix(from, "local:") || strings.HasPrefix(to, "local:") {
				continue
			}
			edges = append(edges, lockEdge{from: from, to: to, pos: pos, read: fromRead && toRead})
		}
	}

	transfer := func(b *cfg.Block, in any) any {
		held := in.(map[string]bool)
		mutated := false
		set := func(label string, read, on bool) {
			if !mutated {
				copy := make(map[string]bool, len(held)+1)
				for l, r := range held {
					copy[l] = r
				}
				held, mutated = copy, true
			}
			if on {
				held[label] = read
			} else {
				delete(held, label)
			}
		}
		for _, n := range b.Nodes {
			scanLockOps(n, func(pos token.Pos, isDefer bool) {
				if a, ok := acquires[pos]; ok {
					emit(held, a.Label, a.Pos, a.Read)
					set(a.Label, a.Read, true)
				}
				if r, ok := releases[pos]; ok && !isDefer {
					// A deferred unlock releases at function exit, so for
					// ordering purposes the lock stays held.
					set(r.Label, r.Read, false)
				}
			})
			// Calls into same-package functions acquire whatever the callee
			// acquires, while the current held set applies.
			if len(held) > 0 {
				for _, callee := range nodeCallees(g, n) {
					for _, label := range g.TransitiveAcquires(callee, dataflow.DefaultDepth) {
						emit(held, label, n.Pos(), false)
					}
				}
			}
		}
		return held
	}
	cfg.Solve(graph, heldLattice{}, transfer, nil)
	return edges
}

// scanLockOps invokes f for every call position inside n, flagging those
// under a defer. Range-statement heads scan only their head-resident
// expression (the body's statements live in their own blocks).
func scanLockOps(n ast.Node, f func(pos token.Pos, isDefer bool)) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if r.X != nil {
			scanLockOps(r.X, f)
		}
		return
	}
	var walk func(m ast.Node, inDefer bool)
	walk = func(m ast.Node, inDefer bool) {
		ast.Inspect(m, func(k ast.Node) bool {
			switch k := k.(type) {
			case *ast.DeferStmt:
				walk(k.Call, true)
				return false
			case *ast.CallExpr:
				f(k.Pos(), inDefer)
			}
			return true
		})
	}
	walk(n, n == nil)
}

// nodeCallees resolves the same-package functions n calls, range heads
// restricted as in scanLockOps.
func nodeCallees(g *dataflow.Graph, n ast.Node) []*types.Func {
	if r, ok := n.(*ast.RangeStmt); ok {
		if r.X == nil {
			return nil
		}
		return nodeCallees(g, r.X)
	}
	var out []*types.Func
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if fn, ok := g.Info.Uses[id].(*types.Func); ok && g.DeclOf(fn) != nil {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// reportLockCycles finds cycles in the edge set and reports each once,
// anchored at its lexicographically smallest label.
func reportLockCycles(pass *analysis.Pass, edges []lockEdge) {
	// Self edges are their own diagnostic: acquiring a label already held.
	succ := make(map[string]map[string]lockEdge)
	selfReported := make(map[token.Pos]bool)
	for _, e := range edges {
		if e.from == e.to {
			if e.read {
				continue // RLock while RLock-ed: legal shared acquisition
			}
			if !selfReported[e.pos] {
				selfReported[e.pos] = true
				pass.Reportf(e.pos, "mutex %s acquired while already held — self deadlock (distinct instances under one label need //lint:allow lockorder <reason>)", e.to)
			}
			continue
		}
		if succ[e.from] == nil {
			succ[e.from] = make(map[string]lockEdge)
		}
		if _, ok := succ[e.from][e.to]; !ok {
			succ[e.from][e.to] = e
		}
	}

	labels := make([]string, 0, len(succ))
	for l := range succ {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	reported := make(map[string]bool)
	for _, start := range labels {
		cycle := findCycle(succ, start)
		if cycle == nil {
			continue
		}
		key := strings.Join(cycle, "→")
		if reported[key] {
			continue
		}
		reported[key] = true
		first := succ[cycle[0]][cycle[1]]
		pass.Reportf(first.pos, "lock order cycle: %s -> %s; acquire these mutexes in one global order (or //lint:allow lockorder <reason>)",
			strings.Join(cycle, " -> "), cycle[0])
	}
}

// findCycle returns the canonical cycle through start (smallest label
// first), nil when start is on no cycle. Deterministic: neighbors are
// explored in sorted order.
func findCycle(succ map[string]map[string]lockEdge, start string) []string {
	var path []string
	onPath := make(map[string]bool)
	var dfs func(cur string) []string
	dfs = func(cur string) []string {
		if cur == start && len(path) > 0 {
			return append([]string{}, path...)
		}
		if onPath[cur] {
			return nil // inner cycle not through start; found from its own anchor
		}
		onPath[cur] = true
		path = append(path, cur)
		next := make([]string, 0, len(succ[cur]))
		for n := range succ[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if c := dfs(n); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		onPath[cur] = false
		return nil
	}
	cycle := dfs(start)
	if cycle == nil {
		return nil
	}
	// Anchor check: report each cycle only from its smallest member, so
	// one cycle yields one diagnostic however many labels it touches.
	for _, l := range cycle {
		if l < cycle[0] {
			return nil
		}
	}
	return cycle
}
