package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// AllocFree enforces the steady-state zero-allocation contract of the
// eval→repair hot path. Functions are opted in with a //lint:hotpath
// directive on their declaration; the analyzer then walks everything
// statically reachable from those roots inside the package (bounded by
// dataflow.DefaultDepth) and reports every allocation site whose value
// escapes, every call to a known-allocating stdlib helper, every append
// that grows a slice born in the same function, and every interface
// conversion that boxes a non-pointer-shaped value.
//
// Cold paths are exempt so the warm path stays checkable without drowning
// in justified noise:
//
//   - sites inside a guarded branch whose condition tests availability or
//     capacity (mentions nil, calls len or cap, or negates a flag) — the
//     pool-miss and buffer-growth idioms;
//   - sites inside a return that produces a non-nil error, or inside a
//     panic call — error exits allocate by design (fmt.Errorf);
//   - sync.Pool New constructors — they ARE the slow path.
//
// Every remaining site needs either a restructure onto a pooled or
// caller-provided buffer, or a //lint:allow allocfree <reason> arguing
// why the allocation is acceptable (e.g. a once-per-table cache insert).
// The runtime twin of this analyzer is TestEvalRepairAllocsAlgorithm1,
// which asserts 0 B/op over the same path; the static form names the site
// and the escape route instead of just the count.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "reports escaping allocations, allocating stdlib calls and interface boxing in functions reachable from //lint:hotpath roots",
	Run:  runAllocFree,
}

// knownAllocators are stdlib helpers that unconditionally allocate their
// result; calling one on a hot path is an allocation site even though the
// make/append lives in another package.
var knownAllocators = map[string]bool{
	"bytes.Clone":         true,
	"fmt.Errorf":          true,
	"fmt.Sprint":          true,
	"fmt.Sprintf":         true,
	"fmt.Sprintln":        true,
	"maps.Clone":          true,
	"slices.Clone":        true,
	"slices.Concat":       true,
	"strconv.FormatBool":  true,
	"strconv.FormatFloat": true,
	"strconv.FormatInt":   true,
	"strconv.Itoa":        true,
	"strconv.Quote":       true,
	"strings.Clone":       true,
	"strings.Join":        true,
	"strings.Repeat":      true,
}

func runAllocFree(pass *analysis.Pass) (any, error) {
	roots := analysis.CollectHotPathRoots(pass.Fset, pass.Files)
	if len(roots) == 0 {
		return nil, nil
	}
	g := dataflow.Build(pass.Fset, pass.Files, pass.TypesInfo, pass.Pkg)
	var rootFns []*types.Func
	for _, fd := range roots {
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			rootFns = append(rootFns, fn)
		}
	}
	reach := g.Reachable(rootFns, dataflow.DefaultDepth)
	for _, fn := range g.Funcs() {
		if reach[fn] {
			checkAllocFree(pass, g.DeclOf(fn))
		}
	}
	return nil, nil
}

// checkAllocFree reports the non-exempt allocation sites of one hot
// function.
func checkAllocFree(pass *analysis.Pass, decl *ast.FuncDecl) {
	c := &allocChecker{pass: pass, decl: decl, parents: parentMap(decl)}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if c.isPoolNew(n) {
				return false // the pool constructor IS the cold path
			}
			c.closureSite(n)
		case *ast.CallExpr:
			c.callSite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.valueSite(n, "&"+exprString(pass.Fset, n.X))
				}
			}
		case *ast.CompositeLit:
			c.literalSite(n)
		case *ast.AssignStmt, *ast.ReturnStmt:
			c.boxingSites(n)
		}
		return true
	})
}

type allocChecker struct {
	pass    *analysis.Pass
	decl    *ast.FuncDecl
	parents map[ast.Node]ast.Node
	// visited guards trackLocal against assignment cycles (x = y; y = x).
	visited map[types.Object]bool
}

// report emits one diagnostic unless the site sits on an exempt cold
// path.
func (c *allocChecker) report(site ast.Node, format string, args ...any) {
	if c.coldPath(site) {
		return
	}
	c.pass.Reportf(site.Pos(), "hot path (reachable from //lint:hotpath root %s): "+format+
		"; keep the steady state allocation-free or justify with //lint:allow allocfree <reason>",
		append([]any{c.decl.Name.Name}, args...)...)
}

// coldPath reports whether site is exempt: inside a guard branch, an
// error return, or a panic call.
func (c *allocChecker) coldPath(site ast.Node) bool {
	for cur := ast.Node(site); cur != nil && cur != c.decl.Body; cur = c.parents[cur] {
		switch p := c.parents[cur].(type) {
		case *ast.IfStmt:
			// Only the branches are cold; the condition itself is warm.
			if cur != p.Cond && cur != p.Init && isGuardCond(p.Cond) {
				return true
			}
		case *ast.ReturnStmt:
			if c.isErrorReturn(p) {
				return true
			}
		case *ast.CallExpr:
			if isPanicCallExpr(p) {
				return true
			}
		}
	}
	return false
}

// isGuardCond recognizes availability/capacity guards: conditions that
// mention nil, call len or cap, or negate a flag (`if !ok`). Both arms of
// such an if are cold — a miss path allocates by design, and the hit path
// of the inverse formulation is covered by symmetry.
func isGuardCond(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "nil" {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.NOT {
				found = true
			}
		}
		return !found
	})
	return found
}

// isErrorReturn reports whether ret produces a non-nil error: the
// enclosing function's last result is an error and the corresponding
// return expression is not the nil literal.
func (c *allocChecker) isErrorReturn(ret *ast.ReturnStmt) bool {
	sig, ok := c.pass.TypesInfo.Defs[c.decl.Name].(*types.Func)
	if !ok {
		return false
	}
	res := sig.Type().(*types.Signature).Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return false
	}
	if len(ret.Results) == 0 {
		return false // naked return: can't see the error value
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

func isErrorType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isPanicCallExpr(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// isPoolNew reports whether lit is the New constructor of a sync.Pool
// (composite-literal field or assignment to a .New field).
func (c *allocChecker) isPoolNew(lit *ast.FuncLit) bool {
	switch p := c.parents[lit].(type) {
	case *ast.KeyValueExpr:
		if key, ok := p.Key.(*ast.Ident); ok && key.Name == "New" {
			if cl, ok := c.parents[p].(*ast.CompositeLit); ok {
				return isNamedType(c.pass.TypesInfo.TypeOf(cl), "sync", "Pool")
			}
		}
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs == ast.Expr(lit) && i < len(p.Lhs) {
				if sel, ok := ast.Unparen(p.Lhs[i]).(*ast.SelectorExpr); ok && sel.Sel.Name == "New" {
					return isNamedType(c.pass.TypesInfo.TypeOf(sel.X), "sync", "Pool")
				}
			}
		}
	}
	return false
}

// callSite classifies a call: builtin make/new, append growth of a fresh
// slice, or a known-allocating stdlib helper.
func (c *allocChecker) callSite(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				c.valueSite(call, exprString(c.pass.Fset, call))
			case "append":
				c.appendSite(call)
			}
			return
		}
	}
	if fn := calledFunc(c.pass, call); fn != nil && fn.Pkg() != nil {
		if knownAllocators[fn.Pkg().Path()+"."+fn.Name()] {
			c.report(call, "call to %s.%s allocates its result", fn.Pkg().Name(), fn.Name())
			return
		}
	}
	c.boxingSites(call)
}

// appendSite flags appends whose base slice was born in this function
// with zero capacity (`var x []T`): each call re-grows it from nothing.
// Appends onto parameters, fields, pooled buffers and stack-array slices
// are exempt — growth there is the caller's (or the guard's) problem, and
// the capacity-guard idioms the hot path uses keep them warm-safe.
func (c *allocChecker) appendSite(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := c.pass.TypesInfo.ObjectOf(base).(*types.Var)
	if !ok || !c.isZeroLocal(obj) {
		return
	}
	c.report(call, "append grows %s, a slice declared with zero capacity in this function — preallocate it or reuse a pooled buffer", base.Name)
}

// isZeroLocal reports whether obj is a local slice variable declared
// without an initial value (`var x []T`), i.e. born with no capacity.
func (c *allocChecker) isZeroLocal(obj *types.Var) bool {
	if obj.Parent() == c.pass.Pkg.Scope() {
		return false
	}
	if _, ok := types.Unalias(obj.Type()).Underlying().(*types.Slice); !ok {
		return false
	}
	zero := false
	ast.Inspect(c.decl.Body, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok || len(spec.Values) != 0 {
			return true
		}
		for _, name := range spec.Names {
			if c.pass.TypesInfo.Defs[name] == obj {
				zero = true
			}
		}
		return !zero
	})
	return zero
}

// literalSite flags slice and map composite literals (value struct
// literals are copies, not allocations, unless their address is taken —
// handled by the & case).
func (c *allocChecker) literalSite(lit *ast.CompositeLit) {
	if u, ok := c.parents[lit].(*ast.UnaryExpr); ok && u.Op == token.AND {
		return // the &lit case reports the UnaryExpr
	}
	if _, ok := c.parents[lit].(*ast.CompositeLit); ok {
		return // nested literal: the outer one is the site
	}
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Slice, *types.Map:
		c.valueSite(lit, exprString(c.pass.Fset, lit))
	}
}

// closureSite flags closures that capture variables and escape. A
// capture-free closure is a static function value; a deferred or
// immediately-invoked closure stays on the stack.
func (c *allocChecker) closureSite(lit *ast.FuncLit) {
	captured := c.capturedVar(lit)
	if captured == "" {
		return
	}
	switch p := c.parents[lit].(type) {
	case *ast.CallExpr:
		if p.Fun == ast.Expr(lit) {
			switch c.parents[p].(type) {
			case *ast.DeferStmt, *ast.ExprStmt:
				return // deferred cleanup or IIFE: non-escaping
			case *ast.GoStmt:
				if c.coldPath(lit) {
					return
				}
				c.report(lit, "closure capturing %s is started as a goroutine and escapes", captured)
				return
			}
		}
	}
	c.valueSite(lit, "closure capturing "+captured)
}

// capturedVar returns the name of a variable the closure captures from
// the enclosing function, "" when it captures nothing.
func (c *allocChecker) capturedVar(lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return name == ""
		}
		if sel, ok := c.parents[id].(*ast.SelectorExpr); ok && sel.Sel == id {
			return true // field/method name, not a variable use
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == c.pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		// Declared inside the closure itself (params, locals)?
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		name = id.Name
		return false
	})
	return name
}

// valueSite runs the escape analysis for a value-producing allocation
// site and reports it when the value leaves the frame.
func (c *allocChecker) valueSite(site ast.Node, desc string) {
	c.visited = make(map[types.Object]bool)
	if path, escapes := c.escapePath(site); escapes {
		c.report(site, "%s escapes: %s", desc, path)
	}
}

// escapePath classifies how the value produced at site flows: ("", false)
// when it provably stays in the frame, (description, true) otherwise.
func (c *allocChecker) escapePath(site ast.Node) (string, bool) {
	cur := site
	for {
		parent := c.parents[cur]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.CallExpr:
			if p.Fun == cur {
				return "", false // IIFE
			}
			// Type conversion: the value flows through unchanged.
			if tv, ok := c.pass.TypesInfo.Types[p.Fun]; ok && tv.IsType() {
				cur = p
				continue
			}
			if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "copy", "delete", "clear":
						return "", false
					case "append":
						// Element or base of an append: flows into the result,
						// which the enclosing assignment tracks.
						cur = p
						continue
					}
				}
			}
			return "passed to " + exprString(c.pass.Fset, p.Fun), true
		case *ast.ReturnStmt:
			return "returned to caller", true
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if ast.Node(rhs) != cur {
					continue
				}
				if len(p.Lhs) != len(p.Rhs) {
					return "assigned in multi-value context", true
				}
				return c.sinkOf(p.Lhs[i])
			}
			return "", false
		case *ast.ValueSpec:
			for i, v := range p.Values {
				if ast.Node(v) == cur && i < len(p.Names) {
					return c.trackLocal(p.Names[i])
				}
			}
			return "", false
		case *ast.KeyValueExpr, *ast.CompositeLit:
			return "stored in a composite literal", true
		case *ast.SendStmt:
			return "sent on a channel", true
		case *ast.GoStmt:
			return "retained by a goroutine", true
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				cur = p
				continue
			}
			return "", false
		case *ast.IndexExpr, *ast.SliceExpr, *ast.SelectorExpr, *ast.StarExpr:
			return "", false // read access
		default:
			return "", false
		}
	}
}

// sinkOf classifies an assignment target: a plain local keeps the value
// in the frame (subject to how the local is used later), anything else
// publishes it.
func (c *allocChecker) sinkOf(lhs ast.Expr) (string, bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return "", false
		}
		if obj := c.pass.TypesInfo.ObjectOf(l); obj != nil && obj.Parent() == c.pass.Pkg.Scope() {
			return "stored in package variable " + l.Name, true
		}
		return c.trackLocal(l)
	default:
		return "stored into " + exprString(c.pass.Fset, lhs), true
	}
}

// trackLocal scans every later use of the local bound at id and returns
// the first use that publishes the value out of the frame.
func (c *allocChecker) trackLocal(id *ast.Ident) (string, bool) {
	obj := c.pass.TypesInfo.ObjectOf(id)
	if obj == nil || c.visited[obj] {
		return "", false
	}
	c.visited[obj] = true
	path := ""
	ast.Inspect(c.decl.Body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || path != "" {
			return path == ""
		}
		if use == id || c.pass.TypesInfo.Uses[use] != obj {
			return true
		}
		if p, esc := c.useEscapes(use); esc {
			path = p + " (via " + id.Name + ")"
		}
		return path == ""
	})
	return path, path != ""
}

// useEscapes classifies one use of a tracked local.
func (c *allocChecker) useEscapes(use *ast.Ident) (string, bool) {
	cur := ast.Node(use)
	for {
		parent := c.parents[cur]
		switch p := parent.(type) {
		case *ast.ParenExpr, *ast.SliceExpr:
			cur = p
			continue
		case *ast.CallExpr:
			if p.Fun == cur {
				return "", false // calling a func-typed local
			}
			if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "copy", "delete", "clear":
						return "", false
					case "append":
						// Self-growth `x = append(x, ...)` stays local; the
						// result's sink is classified where it is assigned.
						return "", false
					}
				}
			}
			return "passed to " + exprString(c.pass.Fset, p.Fun), true
		case *ast.ReturnStmt:
			return "returned to caller", true
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if ast.Node(rhs) == cur {
					if len(p.Lhs) != len(p.Rhs) {
						return "assigned in multi-value context", true
					}
					return c.sinkOf(p.Lhs[i])
				}
			}
			return "", false // use on the LHS: overwrite, not escape
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return "address taken", true
			}
			return "", false
		case *ast.KeyValueExpr, *ast.CompositeLit:
			return "stored in a composite literal", true
		case *ast.SendStmt:
			return "sent on a channel", true
		case *ast.FuncLit:
			return c.closureUse(p)
		case *ast.IndexExpr:
			if p.X == cur {
				return "", false // x[i]: read
			}
			cur = p // value used as index: plain read
			continue
		case *ast.SelectorExpr, *ast.StarExpr:
			return "", false
		default:
			return "", false
		}
	}
}

// closureUse classifies a capture: harmless in a deferred or
// immediately-invoked closure, escaping otherwise.
func (c *allocChecker) closureUse(lit *ast.FuncLit) (string, bool) {
	if p, ok := c.parents[lit].(*ast.CallExpr); ok && p.Fun == ast.Expr(lit) {
		switch c.parents[p].(type) {
		case *ast.DeferStmt, *ast.ExprStmt:
			return "", false
		case *ast.GoStmt:
			return "captured by a goroutine closure", true
		}
	}
	return "captured by an escaping closure", true
}

// boxingSites reports interface conversions of non-pointer-shaped values
// in calls, assignments and returns: each such conversion heap-allocates
// the boxed copy.
func (c *allocChecker) boxingSites(n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		sig := c.callSignature(n)
		if sig == nil {
			return
		}
		for i, arg := range n.Args {
			pt := paramType(sig, i, len(n.Args))
			if pt == nil {
				continue
			}
			c.boxCheck(arg, pt, "argument")
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i := range n.Rhs {
			if lt := c.pass.TypesInfo.TypeOf(n.Lhs[i]); lt != nil {
				c.boxCheck(n.Rhs[i], lt, "assignment")
			}
		}
	case *ast.ReturnStmt:
		sig, ok := c.pass.TypesInfo.Defs[c.decl.Name].(*types.Func)
		if !ok {
			return
		}
		res := sig.Type().(*types.Signature).Results()
		if res.Len() != len(n.Results) {
			return
		}
		for i, r := range n.Results {
			c.boxCheck(r, res.At(i).Type(), "return value")
		}
	}
}

// callSignature resolves the signature of a call's callee, nil for
// builtins and conversions.
func (c *allocChecker) callSignature(call *ast.CallExpr) *types.Signature {
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	t := c.pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := types.Unalias(t).Underlying().(*types.Signature)
	return sig
}

// paramType returns the declared type of argument i, unwrapping variadic
// parameters to their element type.
func paramType(sig *types.Signature, i, nargs int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		slice, ok := types.Unalias(params.At(params.Len() - 1).Type()).(*types.Slice)
		if !ok {
			return nil
		}
		return slice.Elem()
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// boxCheck reports expr when assigning it to target boxes a
// non-pointer-shaped value into an interface.
func (c *allocChecker) boxCheck(expr ast.Expr, target types.Type, what string) {
	if _, ok := types.Unalias(target).Underlying().(*types.Interface); !ok {
		return
	}
	at := c.pass.TypesInfo.TypeOf(expr)
	if at == nil || isPointerShaped(at) {
		return
	}
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok && id.Name == "nil" {
		return
	}
	c.report(expr, "%s %s boxes a %s into an interface, allocating the boxed copy",
		what, exprString(c.pass.Fset, expr), at.String())
}

// isPointerShaped reports whether values of t fit an interface word
// without boxing: pointers, channels, maps, functions and interfaces
// themselves (and unsafe pointers).
func isPointerShaped(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		b := types.Unalias(t).Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil
	}
	return false
}
