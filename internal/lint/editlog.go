package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// EditLog enforces the sole-write-path invariant from PR 3/PR 5: every
// cell mutation must flow through table.Set/SetRef/SetByName/CopyFrom so
// the table's edit log records it — the incremental layers
// (dc.LiveViolationSet, table.Stats.Sync, the repair-diff and coalition
// caches) replay that log instead of rebuilding, and a write that bypasses
// it silently desynchronizes them all.
//
// Mechanically: outside internal/table, any index-assignment into a
// []table.Value is storage-aliasing unless the slice provably originates
// from a fresh local allocation (make, append, composite literal,
// Table.Row's copy, slices.Clone). Writing through Table.RowView — whose
// contract is read-only aliasing — is always a finding, as is writing into
// rows of unknown provenance (parameters, struct fields), which may alias
// live table storage.
//
// Since the edit log went typed (row insert/delete/batch), the structural
// surface is guarded the same way: an index-assignment into a
// [][]table.Value row grid of aliasing provenance — replacing or swapping
// whole row slots, the raw form of an unlogged swap-delete — bypasses the
// typed log exactly as a cell write does, and must go through
// Table.Append/DeleteRow/ApplyBatch instead.
var EditLog = &analysis.Analyzer{
	Name: "editlog",
	Doc: "forbid writes into []table.Value cell storage and [][]table.Value " +
		"row grids outside internal/table; mutate via " +
		"Table.Set/SetRef/SetByName/Append/DeleteRow (or CopyFrom) so the " +
		"typed edit log stays the sole write path",
	Run: runEditLog,
}

func runEditLog(pass *analysis.Pass) (any, error) {
	// internal/table owns the storage and the log; everything else is in
	// scope, including cmd/ and the examples.
	if pathHasSuffix(pass.Pkg.Path(), "internal/table") {
		return nil, nil
	}
	origins := collectOrigins(pass)
	pass.Inspect(func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			switch {
			case isTableValueSlice(pass.TypesInfo.TypeOf(idx.X)):
				if why, bad := storageAlias(pass, origins, idx.X, 0); bad {
					pass.Reportf(lhs.Pos(), "write into []table.Value %s bypasses the edit log; use Table.Set/SetRef/SetByName (or CopyFrom) so incremental consumers see the mutation", why)
				}
			case isTableRowGrid(pass.TypesInfo.TypeOf(idx.X)):
				if why, bad := storageAlias(pass, origins, idx.X, 0); bad {
					pass.Reportf(lhs.Pos(), "structural write into [][]table.Value row grid %s bypasses the typed edit log; use Table.Append/DeleteRow/ApplyBatch (or CopyFrom) so structural deltas are logged", why)
				}
			}
		}
		return true
	})
	return nil, nil
}

// collectOrigins records, for every short-variable-declaration and
// initialized var of the package, the defining expression of each
// variable, so storageAlias can trace a row slice back to its allocation.
func collectOrigins(pass *analysis.Pass) map[types.Object]ast.Expr {
	origins := make(map[types.Object]ast.Expr)
	record := func(ids []*ast.Ident, values []ast.Expr) {
		if len(ids) != len(values) {
			return // multi-value call or mismatched spec: no single origin
		}
		for i, id := range ids {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				origins[obj] = values[i]
			}
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				ids := make([]*ast.Ident, 0, len(n.Lhs))
				for _, l := range n.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok {
						return true
					}
					ids = append(ids, id)
				}
				record(ids, n.Rhs)
			}
		case *ast.ValueSpec:
			record(n.Names, n.Values)
		}
		return true
	})
	return origins
}

// storageAlias reports whether expr may alias live table storage, with a
// human-readable provenance for the diagnostic. Index layers are stripped
// (rows[i][j] traces rows), and identifiers are traced through their
// defining expression to a bounded depth.
func storageAlias(pass *analysis.Pass, origins map[types.Object]ast.Expr, expr ast.Expr, depth int) (why string, bad bool) {
	if depth > 4 {
		return "of unresolvable provenance", true
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.IndexExpr:
		return storageAlias(pass, origins, e.X, depth+1)
	case *ast.CallExpr:
		return callAlias(pass, e)
	case *ast.CompositeLit:
		return "", false
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		if obj == nil {
			return "of unknown origin", true
		}
		if def, ok := origins[obj]; ok {
			return storageAlias(pass, origins, def, depth+1)
		}
		// No visible defining expression: a parameter, struct field
		// shorthand, or package variable — conservatively a storage alias.
		return "(" + e.Name + ", no local allocation in sight)", true
	case *ast.SelectorExpr:
		return "(field " + e.Sel.Name + " may retain a row view)", true
	default:
		return "of unresolvable provenance", true
	}
}

// callAlias classifies a call that produced the row slice: fresh copies
// are fine, RowView is the documented read-only alias, anything else is
// conservatively storage.
func callAlias(pass *analysis.Pass, call *ast.CallExpr) (why string, bad bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "make" || id.Name == "append") {
			return "", false
		}
	}
	fn := calledFunc(pass, call)
	if fn == nil {
		return "returned by an untraceable call", true
	}
	switch {
	case fn.Name() == "RowView" && isNamedType(recvType(fn), "internal/table", "Table"):
		return "obtained from Table.RowView (a read-only view of live storage)", true
	case fn.Name() == "Row" && isNamedType(recvType(fn), "internal/table", "Table"):
		return "", false // Row returns a copy
	case fn.Pkg() != nil && fn.Pkg().Path() == "slices" && fn.Name() == "Clone":
		return "", false
	default:
		return "returned by " + fn.Name(), true
	}
}

// recvType returns the receiver type of a method, nil for functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}
