package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// seededRandScope covers every package on the sampler → game-eval →
// repair-kernel path plus the deterministic data generators: anywhere a
// stray global RNG draw or wall-clock read would break seed-reproducible
// results (the fixed-seed golden tests, the chaos schedules, the CI
// determinism job).
var seededRandScope = []string{
	"internal/shapley", "internal/core", "internal/dc",
	"internal/repair", "internal/exec", "internal/table", "internal/data",
}

// seededRandConstructors are the math/rand package-level functions that do
// NOT touch the global source: they build seeded instances, which is
// exactly how randomness is supposed to enter (rand.New over the SplitMix64
// source in internal/shapley, rand.NewSource(seed) in the generators).
var seededRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// SeededRand reports nondeterminism sources in sampler/kernel/eval paths:
// calls to math/rand's global-source helpers (rand.Intn, rand.Shuffle,
// rand.Seed, ...) and to time.Now. All randomness must flow from the
// seeded SplitMix64 sources (shapley.Options.Seed) or an explicitly seeded
// rand.Source, and wall-clock time must stay out of result computation so
// equal seeds give bit-equal results on every run.
var SeededRand = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid math/rand global-source calls and time.Now in " +
		"deterministic engine packages; randomness must flow from seeded " +
		"sources (SplitMix64 / rand.NewSource(seed)) threaded through " +
		"*rand.Rand parameters",
	Run: runSeededRand,
}

func runSeededRand(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), seededRandScope...) {
		return nil, nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calledFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		// Methods (e.g. (*rand.Rand).Intn on a seeded instance) are the
		// sanctioned API; only package-level functions reach the global
		// source.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if !seededRandConstructors[fn.Name()] {
				pass.Reportf(call.Pos(), "%s.%s draws from the process-global RNG; thread a seeded *rand.Rand (SplitMix64 / rand.NewSource(seed)) instead", fn.Pkg().Name(), fn.Name())
			}
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" {
				pass.Reportf(call.Pos(), "time.%s is a nondeterminism source in engine code; inject timestamps from the caller (or annotate //lint:allow seededrand <reason> for telemetry-only uses)", fn.Name())
			}
		}
		return true
	})
	return nil, nil
}
