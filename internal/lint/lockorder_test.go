package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src/lockorder/internal/locks", "lockorder/internal/locks", lint.LockOrder, "sync")
}
