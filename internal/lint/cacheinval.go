package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
	"repro/internal/lint/dataflow"
)

// CacheInval enforces invalidation completeness: a statement that mutates
// table.Table row storage (t.rows...) or the session constraint set
// (Session.dcs / Session.alg) must be post-dominated by a call into the
// cache invalidation surface — Table.logEdit, Table.logStructural (the
// row insert/delete barrier, which also records the typed entry structural
// replay decodes), Table.invalidateEdits, or Engine.InvalidateCache — so
// no return path can publish stale cache entries keyed on the pre-mutation
// generation.
//
// The check is flow-sensitive: the mutation's basic block and index are
// located in the function's CFG and cfg.EveryPathHits asks whether every
// path to the exit crosses an invalidation barrier. A call to a
// same-package helper that transitively invalidates (per the dataflow
// summaries) counts as a barrier; so does a deferred invalidation
// registered anywhere in the function, since defers run on every exit.
//
// Mutations inside closures are attributed to the statement that contains
// the closure — the approximation is conservative in the common shapes
// (the closure runs before the function returns) and the edit-log
// analyzer independently pins the write path itself.
//
// Session constraint-set mutations carry a second obligation: the
// session's compiled constraint-set plan is keyed on the DC set, so the
// mutation must also be post-dominated by a call into the plan refresh
// surface — Session.refreshPlan or PlanCache.Clear. Engine.InvalidateCache
// deliberately does not satisfy this barrier: it drops the engine's plan
// cache entries but leaves the session's compiled plan pointer stale.
var CacheInval = &analysis.Analyzer{
	Name: "cacheinval",
	Doc:  "reports table-storage and DC-set mutations not post-dominated by cache invalidation and plan refresh",
	Run:  runCacheInval,
}

func runCacheInval(pass *analysis.Pass) (any, error) {
	g := dataflow.Build(pass.Fset, pass.Files, pass.TypesInfo, pass.Pkg)
	for _, fn := range g.Funcs() {
		decl := g.DeclOf(fn)
		if isInvalidationDecl(pass, decl) {
			continue // the surface itself may write freely
		}
		checkCacheInval(pass, g, decl)
	}
	return nil, nil
}

// isInvalidationDecl reports whether decl IS part of the invalidation
// surface (logEdit / logStructural / invalidateEdits on Table): the
// mechanism cannot be required to invoke itself.
func isInvalidationDecl(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	if decl.Recv == nil {
		return false
	}
	switch decl.Name.Name {
	case "logEdit", "logStructural", "invalidateEdits":
		return isNamedType(pass.TypesInfo.TypeOf(decl.Recv.List[0].Type), "internal/table", "Table")
	}
	return false
}

func checkCacheInval(pass *analysis.Pass, g *dataflow.Graph, decl *ast.FuncDecl) {
	// Find mutation sites first; most functions have none and skip the
	// CFG build entirely.
	var sites []ast.Node
	descs := make(map[ast.Node]string)
	sessionCfg := make(map[ast.Node]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if desc, session, ok := mutationTarget(pass, lhs); ok {
				sites = append(sites, as)
				descs[as] = desc
				sessionCfg[as] = sessionCfg[as] || session
				break
			}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	barrier := func(n ast.Node) bool { return nodeInvalidates(pass, g, n) }
	planBarrier := func(n ast.Node) bool { return nodeRefreshesPlan(pass, g, n) }

	// A deferred invalidation runs on every exit path: if the function
	// registers one anywhere, each mutation is covered at return time.
	// The two barrier surfaces are tracked independently.
	deferred, deferredPlan := false, false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if nodeInvalidates(pass, g, d) {
				deferred = true
			}
			if nodeRefreshesPlan(pass, g, d) {
				deferredPlan = true
			}
		}
		return !(deferred && deferredPlan)
	})

	graph := cfg.New(decl.Body)
	// Locate each site's block and intra-block index. Mutations inside
	// closures surface as their enclosing block-level statement.
	covered := make(map[ast.Node]bool)
	for _, b := range graph.Blocks {
		for i, n := range b.Nodes {
			if descs[n] == "" || covered[n] {
				continue
			}
			covered[n] = true
			if !deferred && !graph.EveryPathHits(b, i, barrier) {
				pass.Reportf(n.Pos(),
					"%s is mutated but not every path to return passes cache invalidation afterwards; call Table.logEdit/invalidateEdits or Engine.InvalidateCache on every path (or //lint:allow cacheinval <reason>)",
					descs[n])
			}
			if sessionCfg[n] && !deferredPlan && !graph.EveryPathHits(b, i, planBarrier) {
				pass.Reportf(n.Pos(),
					"%s is mutated but not every path to return recompiles the constraint-set plan afterwards; call Session.refreshPlan or PlanCache.Clear on every path (or //lint:allow cacheinval <reason>)",
					descs[n])
			}
		}
	}
	// A site never placed in a block (inside a closure whose statement we
	// could not attribute) is checked conservatively at function level.
	for _, s := range sites {
		if covered[s] {
			continue
		}
		if !deferred && !funcHasBarrier(decl, barrier) {
			pass.Reportf(s.Pos(),
				"%s is mutated inside a nested function with no invalidation call in sight; invalidate after the mutation (or //lint:allow cacheinval <reason>)",
				descs[s])
		}
		if sessionCfg[s] && !deferredPlan && !funcHasBarrier(decl, planBarrier) {
			pass.Reportf(s.Pos(),
				"%s is mutated inside a nested function with no plan refresh in sight; call Session.refreshPlan after the mutation (or //lint:allow cacheinval <reason>)",
				descs[s])
		}
	}
}

// funcHasBarrier reports whether any node of the body satisfies barrier.
func funcHasBarrier(decl *ast.FuncDecl, barrier func(ast.Node) bool) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n != nil && barrier(n) {
			found = true
		}
		return !found
	})
	return found
}

// mutationTarget classifies an assignment LHS as a guarded mutation:
// writes into Table row storage or the Session constraint-set fields.
// session marks the latter class, which additionally owes a plan refresh.
func mutationTarget(pass *analysis.Pass, lhs ast.Expr) (desc string, session, ok bool) {
	base := lhs
	for {
		if idx, ok := ast.Unparen(base).(*ast.IndexExpr); ok {
			base = idx.X
			continue
		}
		break
	}
	sel, selOK := ast.Unparen(base).(*ast.SelectorExpr)
	if !selOK {
		return "", false, false
	}
	owner := pass.TypesInfo.TypeOf(sel.X)
	switch {
	case sel.Sel.Name == "rows" && isNamedType(owner, "internal/table", "Table"):
		return "table row storage (" + exprString(pass.Fset, lhs) + ")", false, true
	case (sel.Sel.Name == "dcs" || sel.Sel.Name == "alg") && isNamedType(owner, "internal/core", "Session"):
		return "the session repair configuration (" + exprString(pass.Fset, lhs) + ")", true, true
	}
	return "", false, false
}

// nodeInvalidates reports whether node n contains a call that reaches the
// invalidation surface: a direct call to Table.logEdit /
// Table.invalidateEdits / Engine.InvalidateCache, or a call to a
// same-package function that transitively invalidates.
//
// A *ast.RangeStmt head node syntactically contains its body, whose
// statements live in other blocks; only the head-resident parts (the
// range expression) are scanned for it.
func nodeInvalidates(pass *analysis.Pass, g *dataflow.Graph, n ast.Node) bool {
	if r, ok := n.(*ast.RangeStmt); ok {
		return r.X != nil && nodeInvalidates(pass, g, r.X)
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return !found
		}
		fn := calledFunc(pass, call)
		if fn == nil {
			return !found
		}
		if isInvalidationFunc(fn) || g.Invalidates(fn, dataflow.DefaultDepth) {
			found = true
		}
		return !found
	})
	return found
}

// isInvalidationFunc mirrors the dataflow package's invalidation surface
// for direct (possibly cross-package) callees.
func isInvalidationFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "logEdit", "logStructural", "invalidateEdits":
		return isNamedType(sig.Recv().Type(), "internal/table", "Table")
	case "InvalidateCache":
		return isNamedType(sig.Recv().Type(), "internal/exec", "Engine")
	}
	return false
}

// nodeRefreshesPlan is nodeInvalidates for the plan refresh surface:
// a direct call to Session.refreshPlan / PlanCache.Clear, or a call to a
// same-package function that transitively refreshes.
func nodeRefreshesPlan(pass *analysis.Pass, g *dataflow.Graph, n ast.Node) bool {
	if r, ok := n.(*ast.RangeStmt); ok {
		return r.X != nil && nodeRefreshesPlan(pass, g, r.X)
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return !found
		}
		fn := calledFunc(pass, call)
		if fn == nil {
			return !found
		}
		if isPlanRefreshFunc(fn) || g.RefreshesPlan(fn, dataflow.DefaultDepth) {
			found = true
		}
		return !found
	})
	return found
}

// isPlanRefreshFunc mirrors the dataflow package's plan refresh surface
// for direct (possibly cross-package) callees. Engine.InvalidateCache is
// deliberately absent: it drops the engine's plan cache but leaves the
// session's compiled plan pointer stale.
func isPlanRefreshFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "refreshPlan":
		return isNamedType(sig.Recv().Type(), "internal/core", "Session")
	case "Clear":
		return isNamedType(sig.Recv().Type(), "internal/exec", "PlanCache")
	}
	return false
}
