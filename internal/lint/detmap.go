package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// detMapScope is the deterministic fan-out surface: every package whose
// results must be bit-identical between Workers=1 and Workers=N (the PR 4
// determinism contract, enforced at runtime by the CI determinism job and
// here at compile time). Map iteration order is randomized per run, so any
// map range on these paths that feeds ordering-sensitive work — worker
// chunk grids, bucket partitions, sampler accumulation — is a latent
// nondeterminism bug even when today's tests happen to pass.
var detMapScope = []string{"internal/shapley", "internal/exec", "internal/repair", "internal/dc", "internal/core", "internal/server", "internal/faults"}

// DetMap reports ranges over maps in deterministic fan-out packages.
//
// One escape is recognized mechanically: the sorted-keys idiom. A range
// body that only appends to one slice — `for k := range m { keys =
// append(keys, k) }` — is exempt when that slice is later passed to a
// sort.* or slices.Sort* call in the same function, because the collection
// itself is order-free and the sort restores determinism before any
// order-sensitive use. Any other map range must either be rewritten over
// sorted keys or carry a `//lint:allow detmap <reason>` directive arguing
// order-insensitivity (e.g. publication into a keyed cache, where
// last-write-wins per key and keys are disjoint).
var DetMap = &analysis.Analyzer{
	Name: "detmap",
	Doc: "forbid unordered map iteration in deterministic fan-out code " +
		"(internal/shapley, internal/exec, internal/repair, internal/dc); " +
		"sort keys first, or annotate //lint:allow detmap <reason> for " +
		"order-insensitive bodies",
	Run: runDetMap,
}

func runDetMap(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), detMapScope...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := types.Unalias(t).Underlying().(*types.Map); !ok {
				return true
			}
			if collected := keyCollectionTarget(rs); collected != nil && sortedLater(pass, stack, rs, collected) {
				return true
			}
			pass.Reportf(rs.For, "range over map %s iterates in nondeterministic order; collect and sort the keys first, or annotate //lint:allow detmap <reason> if the body is order-insensitive",
				types.TypeString(t, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil, nil
}

// keyCollectionTarget recognizes the collection half of the sorted-keys
// idiom — a body that is exactly one `s = append(s, ...)` — and returns
// the accumulating identifier, nil otherwise.
func keyCollectionTarget(rs *ast.RangeStmt) *ast.Ident {
	if len(rs.Body.List) != 1 {
		return nil
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	return lhs
}

// sortedLater reports whether, after the range statement, the enclosing
// function passes collected to a function of package sort or slices —
// the restore-determinism half of the sorted-keys idiom.
func sortedLater(pass *analysis.Pass, stack []ast.Node, rs *ast.RangeStmt, collected *ast.Ident) bool {
	obj := pass.TypesInfo.ObjectOf(collected)
	if obj == nil {
		return false
	}
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rs.End() {
			return true
		}
		fn := calledFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
