package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestEditLog(t *testing.T) {
	analysistest.Run(t, "testdata/src/editlog/internal/repair", "editlog/internal/repair", lint.EditLog, "slices", "repro/internal/table")
}

func TestEditLogStorageOwnerExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src/editlog/internal/table", "editlog/internal/table", lint.EditLog, "repro/internal/table")
}
