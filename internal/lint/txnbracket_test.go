package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestTxnBracket(t *testing.T) {
	analysistest.Run(t, "testdata/src/txnbracket/internal/core", "txnbracket/internal/core", lint.TxnBracket, "context")
}

func TestTxnBracketOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/txnbracket/internal/server", "txnbracket/internal/server", lint.TxnBracket, "context")
}
