package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestCacheKey(t *testing.T) {
	analysistest.Run(t, "testdata/src/cachekey/internal/core", "cachekey/internal/core", lint.CacheKey, "fmt", "strings", "repro/internal/table")
}
