package repair

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/table"
)

// FixKind selects how a rule computes its replacement value.
type FixKind uint8

const (
	// FixMode replaces with the column's most common value,
	// argmax_c P[Attr = c] — rules 1 and 3 of the paper's Algorithm 1.
	FixMode FixKind = iota
	// FixConditionalMode replaces with the most probable value given
	// another attribute of the same tuple,
	// argmax_c P[Attr = c | Given = t[Given]] — rules 2 and 4.
	FixConditionalMode
)

// Rule pairs a trigger constraint with a fix action: "if tuple t has a
// contradiction according to Constraint then Attr is modified".
type Rule struct {
	// ConstraintID names the DC that triggers the rule. The rule is active
	// only when a constraint with this ID is present in the input set —
	// that is how removing a DC from a Shapley coalition disables the
	// corresponding behaviour of the black box.
	ConstraintID string
	// Attr is the attribute modified by the rule.
	Attr string
	// Kind selects the replacement policy.
	Kind FixKind
	// Given is the conditioning attribute for FixConditionalMode.
	Given string
}

// String renders the rule for logs.
func (r Rule) String() string {
	switch r.Kind {
	case FixConditionalMode:
		return fmt.Sprintf("on %s: %s := argmax P[%s | %s]", r.ConstraintID, r.Attr, r.Attr, r.Given)
	default:
		return fmt.Sprintf("on %s: %s := argmax P[%s]", r.ConstraintID, r.Attr, r.Attr)
	}
}

// RuleRepair is the paper's Algorithm 1 generalized to an arbitrary rule
// list. Rules are applied in order, per tuple in order, re-evaluating
// contradictions against the current working table, and the whole pass
// repeats until a fixpoint (or MaxPasses). This reproduces the cascade of
// Example 1.1: C1 first changes t5[City] to "Madrid", which then makes C2
// fire and change t5[Country].
type RuleRepair struct {
	// AlgName is returned by Name.
	AlgName string
	// Rules is the ordered rule list.
	Rules []Rule
	// MaxPasses bounds fixpoint iteration; 0 means the default (10).
	MaxPasses int
	// runs pools the per-run scratch state (statistics, scan index,
	// violation and row buffers) behind the ScratchRepairer contract.
	runs sync.Pool
}

// ruleRun is the reusable per-run state of one RepairInto invocation. The
// live violation set answers the per-rule "what is violated now?" query
// from delta-maintained lists (each fix retracts and re-derives one row's
// pairs), and its inner scan index serves the point probes.
type ruleRun struct {
	present map[string]*dc.Constraint
	live    *dc.LiveViolationSet
	pooledStats
	vsBuf   []dc.Violation
	badRows []int
	seen    []bool
}

// NewAlgorithm1 returns the paper's Algorithm 1: the four rules for the
// soccer schema, triggered by C1..C4.
func NewAlgorithm1() *RuleRepair {
	return &RuleRepair{
		AlgName: "algorithm1",
		Rules: []Rule{
			{ConstraintID: "C1", Attr: "City", Kind: FixMode},
			{ConstraintID: "C2", Attr: "Country", Kind: FixConditionalMode, Given: "City"},
			{ConstraintID: "C3", Attr: "Country", Kind: FixMode},
			{ConstraintID: "C4", Attr: "Place", Kind: FixConditionalMode, Given: "Team"},
		},
	}
}

// DeriveRules builds a rule list from FD-shaped constraints automatically,
// so RuleRepair extends to any DC set (used by the synthetic experiments).
// For a constraint ¬(t1.A = t2.A ∧ t1.B ≠ t2.B) it emits
// "B := argmax P[B | A]"; for any other shape it picks the first attribute
// appearing in a ≠ predicate (or the first attribute at all) and emits an
// unconditional mode fix.
func DeriveRules(cs []*dc.Constraint) []Rule {
	rules := make([]Rule, 0, len(cs))
	for _, c := range cs {
		rules = append(rules, deriveRule(c))
	}
	return rules
}

func deriveRule(c *dc.Constraint) Rule {
	var eqAttr, neqAttr string
	for _, p := range c.Preds {
		if p.Left.IsConst || p.Right.IsConst {
			continue
		}
		if p.Left.Attr != p.Right.Attr || p.Left.Tuple == p.Right.Tuple {
			continue
		}
		switch p.Op {
		case dc.OpEq:
			if eqAttr == "" {
				eqAttr = p.Left.Attr
			}
		case dc.OpNeq:
			if neqAttr == "" {
				neqAttr = p.Left.Attr
			}
		}
	}
	switch {
	case neqAttr != "" && eqAttr != "":
		return Rule{ConstraintID: c.ID, Attr: neqAttr, Kind: FixConditionalMode, Given: eqAttr}
	case neqAttr != "":
		return Rule{ConstraintID: c.ID, Attr: neqAttr, Kind: FixMode}
	default:
		attrs := c.Attributes()
		if len(attrs) == 0 {
			return Rule{ConstraintID: c.ID}
		}
		return Rule{ConstraintID: c.ID, Attr: attrs[len(attrs)-1], Kind: FixMode}
	}
}

// NewRuleRepair builds a RuleRepair with rules derived from the constraint
// set.
func NewRuleRepair(cs []*dc.Constraint) *RuleRepair {
	return &RuleRepair{AlgName: "rule-repair", Rules: DeriveRules(cs)}
}

// Name implements Algorithm.
func (a *RuleRepair) Name() string {
	if a.AlgName == "" {
		return "rule-repair"
	}
	return a.AlgName
}

// Repair implements Algorithm. Only rules whose trigger constraint is
// present in cs are active; that is the sole way the constraint coalition
// influences this black box, exactly as in the paper's worked example.
func (a *RuleRepair) Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	return a.RepairInto(ctx, cs, dirty, nil)
}

// RepairInto implements ScratchRepairer: Repair writing into the
// caller-owned work table, with every per-run buffer pooled so steady-state
// invocations allocate nothing.
//
//lint:hotpath
func (a *RuleRepair) RepairInto(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table) (*table.Table, error) {
	return a.repairInto(ctx, cs, dirty, work, nil, nil)
}

// RepairIntoParallel implements PartitionedRepairer: the rule cascade
// itself is inherently sequential (each fix feeds the next rule's
// statistics), but the per-rule "what is violated now?" full derivations
// fan their disjoint buckets across the session pool on large tables —
// output bit-identical to RepairInto by the live set's contract.
func (a *RuleRepair) RepairIntoParallel(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool) (*table.Table, error) {
	return a.repairInto(ctx, cs, dirty, work, pool, nil)
}

// RepairIntoPlanned implements PlannedRepairer: the run's live violation
// set executes behind the session's compiled constraint-set plan —
// shared partitions, ordered kernels, pre-filter bitmaps — output
// bit-identical to RepairInto by the plan contract.
func (a *RuleRepair) RepairIntoPlanned(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool, plan dc.SetPlanner) (*table.Table, error) {
	return a.repairInto(ctx, cs, dirty, work, pool, plan)
}

func (a *RuleRepair) repairInto(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool, plan dc.SetPlanner) (*table.Table, error) {
	work = prepareWork(dirty, work)
	st, ok := a.runs.Get().(*ruleRun)
	if !ok {
		st = &ruleRun{present: make(map[string]*dc.Constraint), live: dc.NewLiveViolationSet()}
	}
	defer a.runs.Put(st)
	// Install (or clear) the plan unconditionally: the run state is pooled
	// across sessions, so a stale plan must never survive into a run that
	// did not ask for one.
	st.live.UsePlan(plan)
	if pool != nil {
		st.live.Pool = pool
		defer func() { st.live.Pool = nil }()
	}
	clear(st.present)
	for _, c := range cs {
		st.present[c.ID] = c
	}
	maxPasses := a.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 10
	}
	// One live violation set spans the whole run — and, being pooled, the
	// next run on the same work table: the work-table refresh logs per-cell
	// deltas, so only the violation pairs of refreshed or repaired rows are
	// retracted and re-derived between fixpoint steps.
	for pass := 0; pass < maxPasses; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed, err := a.pass(ctx, st, work)
		if err != nil {
			return nil, err
		}
		if !changed {
			break
		}
	}
	return work, nil
}

func (a *RuleRepair) pass(ctx context.Context, st *ruleRun, work *table.Table) (bool, error) {
	changed := false
	for _, rule := range a.Rules {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		c, ok := st.present[rule.ConstraintID]
		if !ok || rule.Attr == "" {
			continue
		}
		attrIdx, ok := work.Schema().Index(rule.Attr)
		if !ok {
			return false, fmt.Errorf("repair: rule %v: no attribute %q", rule, rule.Attr)
		}
		givenIdx := -1
		if rule.Kind == FixConditionalMode {
			givenIdx, ok = work.Schema().Index(rule.Given)
			if !ok {
				return false, fmt.Errorf("repair: rule %v: no attribute %q", rule, rule.Given)
			}
		}
		// The live set answers "what does this rule's trigger violate now?"
		// from its delta-maintained list; each row is re-verified against
		// the current state before fixing, since earlier fixes within the
		// rule may have resolved it. Rows that start violating mid-rule are
		// picked up by the next fixpoint pass.
		vs, err := st.live.Append(c, work, st.vsBuf[:0])
		st.vsBuf = vs
		if err != nil {
			return false, err
		}
		if cap(st.seen) >= work.NumRows() {
			st.seen = st.seen[:work.NumRows()]
		} else {
			st.seen = make([]bool, work.NumRows())
		}
		clear(st.seen) // pooled across runs; erase unconditionally
		st.badRows = st.badRows[:0]
		for _, v := range vs {
			for _, row := range []int{v.Row1, v.Row2} {
				if !st.seen[row] {
					st.seen[row] = true
					st.badRows = append(st.badRows, row)
				}
			}
		}
		sort.Ints(st.badRows)
		for _, row := range st.badRows {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			violates, err := c.ViolatesRowCached(work, row, st.live.Index())
			if err != nil {
				return false, err
			}
			if !violates {
				continue
			}
			var fix table.Value
			var found bool
			// Statistics reflect the *current* working table so cascaded
			// repairs see each other's effects; the pooled snapshot is
			// rebuilt lazily after mutations.
			switch rule.Kind {
			case FixConditionalMode:
				fix, found = st.fresh(work).ConditionalMode(givenIdx, work.Get(row, givenIdx), attrIdx)
			default:
				fix, found = st.fresh(work).Column(attrIdx).Mode()
			}
			if !found {
				continue // empty column: nothing to repair with
			}
			if !work.Get(row, attrIdx).SameContent(fix) {
				work.Set(row, attrIdx, fix)
				changed = true
			}
		}
	}
	return changed, nil
}
