//go:build race

package repair

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-budget tests skip because instrumentation itself allocates.
const raceEnabled = true
