package repair

import (
	"context"
	"errors"
	"testing"

	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/table"
)

func TestAlgorithm1RepairsFigure2(t *testing.T) {
	ll := data.NewLaLiga()
	alg := NewAlgorithm1()
	clean, err := alg.Repair(context.Background(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Equal(ll.Clean) {
		t.Fatalf("Algorithm 1 output differs from Figure 2b:\ngot:\n%s\nwant:\n%s", clean, ll.Clean)
	}
	// Repaired cells are exactly the blue cells.
	diffs, err := table.Diff(ll.Dirty, clean)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"t4[Country]": true, "t5[City]": true, "t5[Country]": true}
	if len(diffs) != len(want) {
		t.Fatalf("repaired %d cells, want %d: %s", len(diffs), len(want), table.FormatDiffs(ll.Dirty, diffs))
	}
	for _, d := range diffs {
		if !want[ll.Dirty.RefName(d.Ref)] {
			t.Errorf("unexpected repair at %s", ll.Dirty.RefName(d.Ref))
		}
	}
}

func TestAlgorithm1DoesNotMutateInput(t *testing.T) {
	ll := data.NewLaLiga()
	snapshot := ll.Dirty.Clone()
	if _, err := NewAlgorithm1().Repair(context.Background(), ll.DCs, ll.Dirty); err != nil {
		t.Fatal(err)
	}
	if !ll.Dirty.Equal(snapshot) {
		t.Fatal("Repair mutated its input table")
	}
}

func TestAlgorithm1Example22(t *testing.T) {
	// Example 2.2: Alg|t5[City]({C1,C2,C3}, T) = 1, Alg|t5[City]({C2,C3}, T) = 0.
	ll := data.NewLaLiga()
	alg := NewAlgorithm1()
	cell, err := ll.Dirty.ParseRefName("t5[City]")
	if err != nil {
		t.Fatal(err)
	}
	target := ll.Clean.GetRef(cell) // "Madrid"
	ctx := context.Background()

	with, err := CellRepaired(ctx, alg, dc.Without(ll.DCs, "C4"), ll.Dirty, cell, target)
	if err != nil {
		t.Fatal(err)
	}
	if with != 1 {
		t.Errorf("Alg|t5[City]({C1,C2,C3}) = %v, want 1", with)
	}
	without, err := CellRepaired(ctx, alg, dc.Without(dc.Without(ll.DCs, "C4"), "C1"), ll.Dirty, cell, target)
	if err != nil {
		t.Fatal(err)
	}
	if without != 0 {
		t.Errorf("Alg|t5[City]({C2,C3}) = %v, want 0", without)
	}
}

// repairsCountry reports whether the subset S of the La Liga DCs leads
// Algorithm 1 to repair t5[Country] to "Spain".
func repairsCountry(t *testing.T, ids ...string) bool {
	t.Helper()
	ll := data.NewLaLiga()
	var subset []*dc.Constraint
	for _, id := range ids {
		c := dc.ByID(ll.DCs, id)
		if c == nil {
			t.Fatalf("no constraint %s", id)
		}
		subset = append(subset, c)
	}
	got, err := CellRepaired(context.Background(), NewAlgorithm1(), subset, ll.Dirty, ll.CellOfInterest, table.String("Spain"))
	if err != nil {
		t.Fatal(err)
	}
	return got == 1
}

func TestAlgorithm1RepairingSubsets(t *testing.T) {
	// Example 2.3: t5[Country] is repaired exactly for subsets containing
	// C3 or containing both C1 and C2.
	cases := []struct {
		ids  []string
		want bool
	}{
		{nil, false},
		{[]string{"C1"}, false},
		{[]string{"C2"}, false},
		{[]string{"C3"}, true},
		{[]string{"C4"}, false},
		{[]string{"C1", "C2"}, true},
		{[]string{"C1", "C3"}, true},
		{[]string{"C1", "C4"}, false},
		{[]string{"C2", "C3"}, true},
		{[]string{"C2", "C4"}, false},
		{[]string{"C3", "C4"}, true},
		{[]string{"C1", "C2", "C3"}, true},
		{[]string{"C1", "C2", "C4"}, true},
		{[]string{"C1", "C3", "C4"}, true},
		{[]string{"C2", "C3", "C4"}, true},
		{[]string{"C1", "C2", "C3", "C4"}, true},
	}
	for _, tc := range cases {
		if got := repairsCountry(t, tc.ids...); got != tc.want {
			t.Errorf("subset %v: repaired = %v, want %v", tc.ids, got, tc.want)
		}
	}
}

func TestAlgorithm1EmptyConstraints(t *testing.T) {
	ll := data.NewLaLiga()
	clean, err := NewAlgorithm1().Repair(context.Background(), nil, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Equal(ll.Dirty) {
		t.Error("no constraints must mean no repairs")
	}
}

func TestAlgorithm1NullMaskedTable(t *testing.T) {
	// Masked tables (cells nulled out, as in the cell-Shapley game) must
	// never error and never invent violations from nulls.
	ll := data.NewLaLiga()
	masked := ll.Dirty.Clone()
	for _, ref := range masked.Cells() {
		if ref.Row%2 == 0 {
			masked.SetRef(ref, table.Null())
		}
	}
	clean, err := NewAlgorithm1().Repair(context.Background(), ll.DCs, masked)
	if err != nil {
		t.Fatal(err)
	}
	if clean.NumRows() != masked.NumRows() {
		t.Error("shape must be preserved")
	}
}

func TestAlgorithm1ContextCancellation(t *testing.T) {
	ll := data.NewLaLiga()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewAlgorithm1().Repair(ctx, ll.DCs, ll.Dirty); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestAlgorithm1TerminatesOnOscillation(t *testing.T) {
	// A pathological rule set that keeps toggling values must stop at
	// MaxPasses rather than hang.
	tbl := table.MustFromStrings([]string{"A", "B"}, [][]string{{"x", "1"}, {"x", "2"}})
	cs := []*dc.Constraint{dc.MustParse("CX: !(t1.A = t2.A & t1.B != t2.B)")}
	alg := &RuleRepair{AlgName: "osc", Rules: []Rule{{ConstraintID: "CX", Attr: "B", Kind: FixMode}}, MaxPasses: 3}
	if _, err := alg.Repair(context.Background(), cs, tbl); err != nil {
		t.Fatal(err)
	}
}

func TestRuleRepairUnknownAttr(t *testing.T) {
	tbl := table.MustFromStrings([]string{"A"}, [][]string{{"x"}, {"y"}})
	cs := []*dc.Constraint{dc.MustParse("CX: !(t1.A != t2.A)")}
	alg := &RuleRepair{Rules: []Rule{{ConstraintID: "CX", Attr: "Nope", Kind: FixMode}}}
	if _, err := alg.Repair(context.Background(), cs, tbl); err == nil {
		t.Error("unknown rule attribute must error")
	}
	alg2 := &RuleRepair{Rules: []Rule{{ConstraintID: "CX", Attr: "A", Kind: FixConditionalMode, Given: "Nope"}}}
	if _, err := alg2.Repair(context.Background(), cs, tbl); err == nil {
		t.Error("unknown given attribute must error")
	}
}

func TestDeriveRules(t *testing.T) {
	cs, err := dc.ParseSet(`
C1: !(t1.A = t2.A & t1.B != t2.B)
C2: !(t1.X != t2.X)
C3: !(t1.Y = t2.Y)
`)
	if err != nil {
		t.Fatal(err)
	}
	rules := DeriveRules(cs)
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	if rules[0].Kind != FixConditionalMode || rules[0].Attr != "B" || rules[0].Given != "A" {
		t.Errorf("FD rule = %v", rules[0])
	}
	if rules[1].Kind != FixMode || rules[1].Attr != "X" {
		t.Errorf("neq rule = %v", rules[1])
	}
	if rules[2].Kind != FixMode || rules[2].Attr != "Y" {
		t.Errorf("fallback rule = %v", rules[2])
	}
}

func TestDeriveRulesFixesPaperTable(t *testing.T) {
	// The generic rule deriver, given the paper's DCs, must still repair
	// the cell of interest (C2's derived rule conditions Country on City,
	// C3's conditions Country on League — different fixes, same outcome).
	ll := data.NewLaLiga()
	alg := NewRuleRepair(ll.DCs)
	got, err := CellRepaired(context.Background(), alg, ll.DCs, ll.Dirty, ll.CellOfInterest, table.String("Spain"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Error("derived rules must repair t5[Country] to Spain")
	}
}

func TestRuleString(t *testing.T) {
	r1 := Rule{ConstraintID: "C1", Attr: "City", Kind: FixMode}
	if r1.String() != "on C1: City := argmax P[City]" {
		t.Errorf("String = %q", r1.String())
	}
	r2 := Rule{ConstraintID: "C2", Attr: "Country", Kind: FixConditionalMode, Given: "City"}
	if r2.String() != "on C2: Country := argmax P[Country | City]" {
		t.Errorf("String = %q", r2.String())
	}
}

func TestFuncAdapter(t *testing.T) {
	wantErr := errors.New("boom")
	f := Func{AlgName: "failing", Fn: func(context.Context, []*dc.Constraint, *table.Table) (*table.Table, error) {
		return nil, wantErr
	}}
	if f.Name() != "failing" {
		t.Error("Name")
	}
	ll := data.NewLaLiga()
	if _, err := CellRepaired(context.Background(), f, ll.DCs, ll.Dirty, ll.CellOfInterest, table.String("Spain")); !errors.Is(err, wantErr) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestCellRepairedShapeCheck(t *testing.T) {
	ll := data.NewLaLiga()
	bad := Func{AlgName: "shape-changer", Fn: func(_ context.Context, _ []*dc.Constraint, d *table.Table) (*table.Table, error) {
		return table.New(d.Schema()), nil // drops all rows
	}}
	if _, err := CellRepaired(context.Background(), bad, ll.DCs, ll.Dirty, ll.CellOfInterest, table.String("Spain")); err == nil {
		t.Error("shape change must be rejected")
	}
}
