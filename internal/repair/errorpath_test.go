package repair

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/table"
)

// errString renders an error for golden comparison (empty for nil).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// errorPathFixture is one (constraints, dirty) input expected to exercise
// a failure or non-convergence path of the black boxes.
type errorPathFixture struct {
	name string
	dcs  []*dc.Constraint
	tbl  *table.Table
}

func errorPathFixtures() []errorPathFixture {
	tbl := table.MustFromStrings([]string{"A", "B"}, [][]string{
		{"x", "1"}, {"x", "2"}, {"y", "3"}, {"y", "3"},
	})
	return []errorPathFixture{
		{
			// A single-tuple constraint violated by every possible row: no
			// reassignment can ever satisfy it, so repairs must terminate
			// deterministically without thrashing — and identically on the
			// serial and parallel paths.
			name: "unsatisfiable",
			dcs: []*dc.Constraint{
				dc.MustParse("U1: !(t1.A = t1.A)"),
				dc.MustParse("C1: !(t1.A = t2.A & t1.B != t2.B)"),
			},
			tbl: tbl,
		},
		{
			// A constraint referencing an attribute the schema lacks fails
			// at evaluation time — the deterministic error path.
			name: "unknown-attribute",
			dcs: []*dc.Constraint{
				dc.MustParse("X1: !(t1.Nope = t2.Nope)"),
				dc.MustParse("C1: !(t1.A = t2.A & t1.B != t2.B)"),
			},
			tbl: tbl,
		},
	}
}

// TestParallelRepairErrorGoldenEquivalence extends the PartitionedRepairer
// bit-identity contract to the *error* channel: for every black box,
// fixture and worker count, RepairIntoParallel must return exactly the
// error RepairInto returns (same message; nil iff nil) — and when both
// succeed, the identical table.
func TestParallelRepairErrorGoldenEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, fx := range errorPathFixtures() {
		for _, alg := range All(1) {
			pr, ok := alg.(PartitionedRepairer)
			if !ok {
				t.Fatalf("%s does not implement PartitionedRepairer", alg.Name())
			}
			want, wantErr := pr.RepairInto(ctx, fx.dcs, fx.tbl, nil)
			for _, workers := range []int{1, 2, 8} {
				pool := exec.NewPool(workers)
				for round := 0; round < 2; round++ {
					label := fmt.Sprintf("%s/%s/workers=%d/round=%d", fx.name, alg.Name(), workers, round)
					got, gotErr := pr.RepairIntoParallel(ctx, fx.dcs, fx.tbl, nil, pool)
					if errString(gotErr) != errString(wantErr) {
						t.Fatalf("%s: error %q vs serial %q", label, errString(gotErr), errString(wantErr))
					}
					if wantErr == nil {
						assertTablesIdentical(t, label, got, want)
					}
				}
			}
		}
	}
}

// TestParallelRepairContextCancellation: a pre-canceled context must
// surface context.Canceled from both paths — not a worker-dependent
// wrapper, not a success.
func TestParallelRepairContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fx := errorPathFixtures()[0]
	for _, alg := range All(1) {
		pr := alg.(PartitionedRepairer)
		_, serialErr := pr.RepairInto(ctx, fx.dcs, fx.tbl, nil)
		if !errors.Is(serialErr, context.Canceled) {
			t.Fatalf("%s: serial error = %v, want context.Canceled", alg.Name(), serialErr)
		}
		for _, workers := range []int{1, 4} {
			_, parErr := pr.RepairIntoParallel(ctx, fx.dcs, fx.tbl, nil, exec.NewPool(workers))
			if !errors.Is(parErr, context.Canceled) {
				t.Fatalf("%s/w=%d: parallel error = %v, want context.Canceled", alg.Name(), workers, parErr)
			}
			if errString(parErr) != errString(serialErr) {
				t.Fatalf("%s/w=%d: parallel error %q vs serial %q", alg.Name(), workers, errString(parErr), errString(serialErr))
			}
		}
	}
}

// TestCellRepairedWithErrorGolden: the binary-view wrapper must report the
// same error for the pooled/parallel path as for the plain one.
func TestCellRepairedWithErrorGolden(t *testing.T) {
	ctx := context.Background()
	fx := errorPathFixtures()[1] // unknown attribute: deterministic error
	cell := table.CellRef{Row: 1, Col: 1}
	for _, alg := range All(1) {
		_, serialErr := CellRepaired(ctx, alg, fx.dcs, fx.tbl, cell, table.String("1"))
		for _, workers := range []int{1, 4} {
			_, parErr := CellRepairedWith(ctx, alg, fx.dcs, fx.tbl, cell, table.String("1"), exec.NewPool(workers))
			if errString(parErr) != errString(serialErr) {
				t.Fatalf("%s/w=%d: error %q vs serial %q", alg.Name(), workers, errString(parErr), errString(serialErr))
			}
		}
	}
}
