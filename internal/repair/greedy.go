package repair

import (
	"context"
	"slices"
	"sync"

	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/table"
)

// Greedy is a holistic-cleaning baseline in the spirit of Chu, Ilyas and
// Papotti (ICDE 2013): it builds the violation hypergraph (which cells
// participate in which violations), repeatedly picks the cell covering the
// most violations, and reassigns it to the candidate value that minimizes
// the number of violations the owning tuple participates in. It stops at
// consistency or after MaxSteps reassignments.
type Greedy struct {
	// MaxSteps bounds the number of cell reassignments; 0 means rows×cols.
	MaxSteps int
	// runs pools the per-run scratch state behind the ScratchRepairer
	// contract.
	runs sync.Pool
}

// NewGreedy returns a Greedy with default limits.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Algorithm.
func (g *Greedy) Name() string { return "greedy-holistic" }

// greedyRun is the reusable per-run state of one RepairInto invocation.
// The hypergraph rebuild after every reassignment reads the live violation
// set, so only the reassigned row's pairs are re-derived per step.
type greedyRun struct {
	live *dc.LiveViolationSet
	pooledStats
	vsBuf  []dc.Violation
	counts map[table.CellRef]int
	refs   []table.CellRef
}

// Repair implements Algorithm.
func (g *Greedy) Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	return g.RepairInto(ctx, cs, dirty, nil)
}

// RepairInto implements ScratchRepairer: Repair writing into the
// caller-owned work table with pooled per-run buffers.
//
//lint:hotpath
func (g *Greedy) RepairInto(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table) (*table.Table, error) {
	return g.repairInto(ctx, cs, dirty, work, nil, nil)
}

// RepairIntoParallel implements PartitionedRepairer: the greedy commit
// loop is sequential by design (each reassignment changes the hypergraph
// the next pick reads), but the hypergraph's full violation derivations
// fan their disjoint buckets across the session pool on large tables —
// output bit-identical to RepairInto by the live set's contract.
func (g *Greedy) RepairIntoParallel(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool) (*table.Table, error) {
	return g.repairInto(ctx, cs, dirty, work, pool, nil)
}

// RepairIntoPlanned implements PlannedRepairer: the run's live violation
// set (and the point probes of the candidate search, which share its
// index) executes behind the session's compiled constraint-set plan —
// output bit-identical to RepairInto by the plan contract.
func (g *Greedy) RepairIntoPlanned(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool, plan dc.SetPlanner) (*table.Table, error) {
	return g.repairInto(ctx, cs, dirty, work, pool, plan)
}

func (g *Greedy) repairInto(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool, plan dc.SetPlanner) (*table.Table, error) {
	work = prepareWork(dirty, work)
	st, ok := g.runs.Get().(*greedyRun)
	if !ok {
		st = &greedyRun{live: dc.NewLiveViolationSet(), counts: make(map[table.CellRef]int)}
	}
	defer g.runs.Put(st)
	st.live.UsePlan(plan)
	if pool != nil {
		st.live.Pool = pool
		defer func() { st.live.Pool = nil }()
	}
	maxSteps := g.MaxSteps
	if maxSteps <= 0 {
		maxSteps = work.NumCells()
	}
	for step := 0; step < maxSteps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hot, err := g.hotCells(cs, work, st)
		if err != nil {
			return nil, err
		}
		if len(hot) == 0 {
			break // consistent
		}
		stats := st.fresh(work)
		progressed := false
		// Try cells from most to least loaded; commit the first strict
		// improvement. Join-key cells often cannot improve (no alternative
		// value exists), so falling through to cooler cells is essential.
		for _, cell := range hot {
			best, improved, err := g.bestCandidate(ctx, cs, work, stats, cell, st.live.Index())
			if err != nil {
				return nil, err
			}
			if improved {
				work.SetRef(cell, best)
				progressed = true
				break
			}
		}
		if !progressed {
			// No cell can be improved; freeze the table state rather than
			// thrash (deterministic termination).
			break
		}
	}
	return work, nil
}

// hotCells returns every cell participating in at least one violation,
// ordered by descending violation count, ties by vectorization order. The
// returned slice aliases the run's pooled buffer.
func (g *Greedy) hotCells(cs []*dc.Constraint, t *table.Table, st *greedyRun) ([]table.CellRef, error) {
	clear(st.counts)
	st.refs = st.refs[:0]
	counts := st.counts
	for _, c := range cs {
		vs, err := st.live.Append(c, t, st.vsBuf[:0])
		st.vsBuf = vs
		if err != nil {
			return nil, err
		}
		attrs := c.Attributes()
		for _, v := range vs {
			for _, attr := range attrs {
				col := t.Schema().MustIndex(attr)
				ref := table.CellRef{Row: v.Row1, Col: col}
				if counts[ref] == 0 {
					st.refs = append(st.refs, ref)
				}
				counts[ref]++
				if v.Row2 != v.Row1 {
					ref = table.CellRef{Row: v.Row2, Col: col}
					if counts[ref] == 0 {
						st.refs = append(st.refs, ref)
					}
					counts[ref]++
				}
			}
		}
	}
	refs := st.refs
	//lint:allow allocfree one comparator closure per hot-cell ranking pass; SortFunc does not retain it
	slices.SortFunc(refs, func(a, b table.CellRef) int {
		if counts[a] != counts[b] {
			return counts[b] - counts[a]
		}
		return t.VecIndex(a) - t.VecIndex(b)
	})
	return refs, nil
}

// bestCandidate evaluates the column's observed values as replacements and
// returns the one that strictly reduces the number of violating pairs the
// owning tuple participates in. Counting pairs (not just violated
// constraints) gives the search gradient within a column: lowering a
// tuple's conflicts from five partners to one is progress even though the
// same constraint stays violated.
func (g *Greedy) bestCandidate(ctx context.Context, cs []*dc.Constraint, t *table.Table, stats *table.Stats, cell table.CellRef, ix *dc.ScanIndex) (table.Value, bool, error) {
	old := t.GetRef(cell)
	current, err := tupleViolationPairs(cs, t, cell.Row, ix)
	if err != nil {
		return table.Null(), false, err
	}
	bestVal, bestViol := old, current
	for _, e := range stats.Column(cell.Col).Entries() {
		if err := ctx.Err(); err != nil {
			return table.Null(), false, err
		}
		if e.Value.SameContent(old) {
			continue
		}
		t.SetRef(cell, e.Value)
		viol, err := tupleViolationPairs(cs, t, cell.Row, ix)
		t.SetRef(cell, old)
		if err != nil {
			return table.Null(), false, err
		}
		if viol < bestViol {
			bestVal, bestViol = e.Value, viol
		}
	}
	return bestVal, bestViol < current, nil
}

// tupleViolationPairs counts the violating tuple pairs row i participates
// in, summed over constraints (single-tuple violations count once). When an
// index is supplied, pair constraints with equality join keys are counted
// over the row's hash bucket only — partners outside the bucket cannot
// satisfy the equality predicates, so the count is identical and the probe
// drops from O(rows) to O(bucket).
func tupleViolationPairs(cs []*dc.Constraint, t *table.Table, row int, ix *dc.ScanIndex) (int, error) {
	n := 0
	for _, c := range cs {
		if c.SingleTuple() {
			sat, err := c.SatisfiedPair(t, row, row)
			if err != nil {
				return 0, err
			}
			if sat {
				n++
			}
			continue
		}
		m, err := c.ViolationPairsForRow(t, row, ix)
		if err != nil {
			return 0, err
		}
		n += m
	}
	return n, nil
}
