package repair

import (
	"context"
	"sort"

	"repro/internal/dc"
	"repro/internal/table"
)

// Greedy is a holistic-cleaning baseline in the spirit of Chu, Ilyas and
// Papotti (ICDE 2013): it builds the violation hypergraph (which cells
// participate in which violations), repeatedly picks the cell covering the
// most violations, and reassigns it to the candidate value that minimizes
// the number of violations the owning tuple participates in. It stops at
// consistency or after MaxSteps reassignments.
type Greedy struct {
	// MaxSteps bounds the number of cell reassignments; 0 means rows×cols.
	MaxSteps int
}

// NewGreedy returns a Greedy with default limits.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Algorithm.
func (g *Greedy) Name() string { return "greedy-holistic" }

// Repair implements Algorithm.
func (g *Greedy) Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	work := dirty.Clone()
	maxSteps := g.MaxSteps
	if maxSteps <= 0 {
		maxSteps = work.NumCells()
	}
	ix := dc.NewScanIndex()
	for step := 0; step < maxSteps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hot, err := g.hotCells(cs, work, ix)
		if err != nil {
			return nil, err
		}
		if len(hot) == 0 {
			break // consistent
		}
		stats := table.NewStats(work)
		progressed := false
		// Try cells from most to least loaded; commit the first strict
		// improvement. Join-key cells often cannot improve (no alternative
		// value exists), so falling through to cooler cells is essential.
		for _, cell := range hot {
			best, improved, err := g.bestCandidate(ctx, cs, work, stats, cell)
			if err != nil {
				return nil, err
			}
			if improved {
				work.SetRef(cell, best)
				progressed = true
				break
			}
		}
		if !progressed {
			// No cell can be improved; freeze the table state rather than
			// thrash (deterministic termination).
			break
		}
	}
	return work, nil
}

// hotCells returns every cell participating in at least one violation,
// ordered by descending violation count, ties by vectorization order.
func (g *Greedy) hotCells(cs []*dc.Constraint, t *table.Table, ix *dc.ScanIndex) ([]table.CellRef, error) {
	counts := make(map[table.CellRef]int)
	for _, c := range cs {
		vs, err := c.ViolationsCached(t, ix)
		if err != nil {
			return nil, err
		}
		attrs := c.Attributes()
		for _, v := range vs {
			for _, attr := range attrs {
				col := t.Schema().MustIndex(attr)
				counts[table.CellRef{Row: v.Row1, Col: col}]++
				if v.Row2 != v.Row1 {
					counts[table.CellRef{Row: v.Row2, Col: col}]++
				}
			}
		}
	}
	refs := make([]table.CellRef, 0, len(counts))
	for ref := range counts {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(a, b int) bool {
		if counts[refs[a]] != counts[refs[b]] {
			return counts[refs[a]] > counts[refs[b]]
		}
		return t.VecIndex(refs[a]) < t.VecIndex(refs[b])
	})
	return refs, nil
}

// bestCandidate evaluates the column's observed values as replacements and
// returns the one that strictly reduces the number of violating pairs the
// owning tuple participates in. Counting pairs (not just violated
// constraints) gives the search gradient within a column: lowering a
// tuple's conflicts from five partners to one is progress even though the
// same constraint stays violated.
func (g *Greedy) bestCandidate(ctx context.Context, cs []*dc.Constraint, t *table.Table, stats *table.Stats, cell table.CellRef) (table.Value, bool, error) {
	old := t.GetRef(cell)
	current, err := tupleViolationPairs(cs, t, cell.Row)
	if err != nil {
		return table.Null(), false, err
	}
	bestVal, bestViol := old, current
	for _, e := range stats.Column(cell.Col).Entries() {
		if err := ctx.Err(); err != nil {
			return table.Null(), false, err
		}
		if e.Value.SameContent(old) {
			continue
		}
		t.SetRef(cell, e.Value)
		viol, err := tupleViolationPairs(cs, t, cell.Row)
		t.SetRef(cell, old)
		if err != nil {
			return table.Null(), false, err
		}
		if viol < bestViol {
			bestVal, bestViol = e.Value, viol
		}
	}
	return bestVal, bestViol < current, nil
}

// tupleViolationPairs counts the violating tuple pairs row i participates
// in, summed over constraints (single-tuple violations count once).
func tupleViolationPairs(cs []*dc.Constraint, t *table.Table, row int) (int, error) {
	n := 0
	for _, c := range cs {
		if c.SingleTuple() {
			sat, err := c.SatisfiedPair(t, row, row)
			if err != nil {
				return 0, err
			}
			if sat {
				n++
			}
			continue
		}
		for j := 0; j < t.NumRows(); j++ {
			if j == row {
				continue
			}
			for _, pair := range [2][2]int{{row, j}, {j, row}} {
				sat, err := c.SatisfiedPair(t, pair[0], pair[1])
				if err != nil {
					return 0, err
				}
				if sat {
					n++
				}
			}
		}
	}
	return n, nil
}
