package repair

import (
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/table"
)

// scratchFixture bundles one golden-equivalence instance.
type scratchFixture struct {
	name  string
	dcs   []*dc.Constraint
	dirty *table.Table
}

// scratchFixtures returns the laliga and hospital instances the golden
// suite sweeps. The hospital table carries injected typos so every black
// box has real work to do.
func scratchFixtures(t *testing.T) []scratchFixture {
	t.Helper()
	ll := data.NewLaLiga()
	clean := data.GenerateHospital(data.HospitalConfig{Providers: 16, Zips: 4, Seed: 7})
	hospital, _, err := data.Inject(clean, data.InjectSpec{
		Rate: 0.1, Columns: []string{"City", "State"}, Kinds: []data.ErrorKind{data.ErrorTypo, data.ErrorSwap}, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return []scratchFixture{
		{"laliga", ll.DCs, ll.Dirty},
		{"hospital", data.HospitalDCs(), hospital},
	}
}

// scratchAlgorithms returns every production ScratchRepairer plus a
// derived-rule RuleRepair, so the suite covers both rule flavours.
func scratchAlgorithms(dcs []*dc.Constraint) []Algorithm {
	return append(All(1), NewRuleRepair(dcs))
}

// TestRepairIntoGoldenEquivalence is the tentpole's contract: for every
// black box and fixture, RepairInto — with a nil work table, a fresh one,
// and a recycled one carrying arbitrary previous contents — produces
// exactly the table Repair produces, and never mutates the dirty input.
func TestRepairIntoGoldenEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, fx := range scratchFixtures(t) {
		for _, alg := range scratchAlgorithms(fx.dcs) {
			sr, ok := alg.(ScratchRepairer)
			if !ok {
				t.Fatalf("%s does not implement ScratchRepairer", alg.Name())
			}
			snapshot := fx.dirty.Clone()
			want, err := alg.Repair(ctx, fx.dcs, fx.dirty)
			if err != nil {
				t.Fatalf("%s/%s: Repair: %v", fx.name, alg.Name(), err)
			}
			if want == fx.dirty {
				t.Fatalf("%s/%s: Repair returned the input table", fx.name, alg.Name())
			}
			// Nil work allocates; the result must match.
			got, err := sr.RepairInto(ctx, fx.dcs, fx.dirty, nil)
			if err != nil {
				t.Fatalf("%s/%s: RepairInto(nil): %v", fx.name, alg.Name(), err)
			}
			if !got.Equal(want) {
				t.Errorf("%s/%s: RepairInto(nil) differs from Repair:\n%s\nvs\n%s", fx.name, alg.Name(), got, want)
			}
			// A recycled work table with stale contents must be refreshed,
			// repeatedly: run three rounds through the same scratch.
			work := table.MustFromStrings([]string{"X"}, [][]string{{"stale"}})
			for round := 0; round < 3; round++ {
				work, err = sr.RepairInto(ctx, fx.dcs, fx.dirty, work)
				if err != nil {
					t.Fatalf("%s/%s: RepairInto(recycled, round %d): %v", fx.name, alg.Name(), round, err)
				}
				if !work.Equal(want) {
					t.Errorf("%s/%s: round %d differs from Repair:\n%s\nvs\n%s", fx.name, alg.Name(), round, work, want)
				}
			}
			// Aliased work (caller error) must fall back to a clone.
			got, err = sr.RepairInto(ctx, fx.dcs, fx.dirty, fx.dirty)
			if err != nil {
				t.Fatalf("%s/%s: RepairInto(aliased): %v", fx.name, alg.Name(), err)
			}
			if got == fx.dirty {
				t.Errorf("%s/%s: aliased work returned the input table", fx.name, alg.Name())
			}
			if !got.Equal(want) {
				t.Errorf("%s/%s: RepairInto(aliased) differs from Repair", fx.name, alg.Name())
			}
			if !fx.dirty.Equal(snapshot) {
				t.Fatalf("%s/%s: dirty input was mutated", fx.name, alg.Name())
			}
		}
	}
}

// TestRepairIntoGoldenUnderCoalitions drives the exact workload the
// Shapley evaluation loop produces — dirty tables with masked (nulled)
// cells and constraint subsets — through CellRepaired twice per coalition:
// once with the ScratchRepairer fast path, once with the interface hidden
// behind Func (the legacy clone path). The binary views must agree bit for
// bit.
func TestRepairIntoGoldenUnderCoalitions(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	cell := ll.CellOfInterest
	target := table.String("Spain")
	for _, alg := range scratchAlgorithms(ll.DCs) {
		legacy := Func{AlgName: alg.Name(), Fn: alg.Repair}
		// Sweep constraint subsets (all 2^4) on the unmasked table, plus a
		// set of masked variants under the full constraint set.
		for mask := 0; mask < 1<<len(ll.DCs); mask++ {
			var subset []*dc.Constraint
			for i, c := range ll.DCs {
				if mask&(1<<i) != 0 {
					subset = append(subset, c)
				}
			}
			fast, err := CellRepaired(ctx, alg, subset, ll.Dirty, cell, target)
			if err != nil {
				t.Fatalf("%s mask %b: %v", alg.Name(), mask, err)
			}
			slow, err := CellRepaired(ctx, legacy, subset, ll.Dirty, cell, target)
			if err != nil {
				t.Fatalf("%s mask %b (legacy): %v", alg.Name(), mask, err)
			}
			if fast != slow {
				t.Errorf("%s subset %b: fast %v, legacy %v", alg.Name(), mask, fast, slow)
			}
		}
		for n := 0; n < 12; n++ {
			masked := ll.Dirty.Clone()
			for k := 0; k < masked.NumCells(); k += n + 2 {
				ref := masked.RefAt(k)
				if ref != cell {
					masked.SetRef(ref, table.Null())
				}
			}
			fast, err := CellRepaired(ctx, alg, ll.DCs, masked, cell, target)
			if err != nil {
				t.Fatalf("%s masked %d: %v", alg.Name(), n, err)
			}
			slow, err := CellRepaired(ctx, legacy, ll.DCs, masked, cell, target)
			if err != nil {
				t.Fatalf("%s masked %d (legacy): %v", alg.Name(), n, err)
			}
			if fast != slow {
				t.Errorf("%s masked stride %d: fast %v, legacy %v", alg.Name(), n+2, fast, slow)
			}
		}
	}
}

// TestRepairIntoAllocs asserts the repairer half of the hot path: once the
// pooled run state and the recycled work table are warm, RepairInto under
// Algorithm 1 on the paper's table allocates nothing — including the
// conditional-mode statistics rules 2 and 4 use.
func TestRepairIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ctx := context.Background()
	ll := data.NewLaLiga()
	alg := NewAlgorithm1()
	work, err := alg.RepairInto(ctx, ll.DCs, ll.Dirty, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pooled buffers to steady state.
	for i := 0; i < 3; i++ {
		if work, err = alg.RepairInto(ctx, ll.DCs, ll.Dirty, work); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(200, func() {
		var err error
		if work, err = alg.RepairInto(ctx, ll.DCs, ll.Dirty, work); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("RepairInto allocates %.1f per op, want 0", got)
	}
}

// TestCellRepairedScratchAllocs covers the CellRepaired wrapper itself:
// the pooled work table plus RepairInto must keep the whole binary-view
// computation allocation-free.
func TestCellRepairedScratchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ctx := context.Background()
	ll := data.NewLaLiga()
	alg := NewAlgorithm1()
	cell := ll.CellOfInterest
	target := table.String("Spain")
	for i := 0; i < 4; i++ {
		if _, err := CellRepaired(ctx, alg, ll.DCs, ll.Dirty, cell, target); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := CellRepaired(ctx, alg, ll.DCs, ll.Dirty, cell, target); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("CellRepaired allocates %.1f per op, want 0", got)
	}
}
