package repair

import (
	"context"
	"sync"

	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/table"
)

// FDChase is an equivalence-class chase baseline in the spirit of
// Bohannon et al.'s CFD repairs (ICDE 2007), restricted to FD-shaped DCs
// ¬(t1.A = t2.A ∧ t1.B ≠ t2.B), read as the functional dependency A → B.
// Rows are grouped by the left-hand side value; within each group the
// right-hand side is forced to the group's majority value (ties to the
// first-observed value). Groups are chased in constraint order until a
// fixpoint, since repairing one FD can re-group another.
//
// Constraints that are not FD-shaped are ignored by this black box — which
// is itself interesting to explain: T-REx assigns them zero contribution.
type FDChase struct {
	// MaxPasses bounds fixpoint iteration; 0 means the default (10).
	MaxPasses int
	// runs pools the per-run scratch state behind the ScratchRepairer
	// contract.
	runs sync.Pool
}

// chaseEntry pairs a recognized FD with the constraint it came from, so
// the chase can reuse the constraint's hash-join partition.
type chaseEntry struct {
	c *dc.Constraint
	d fd
}

// chaseRun is the reusable per-run state of one RepairInto invocation. The
// live violation set steers each chase pass to exactly the groups that
// currently contain a violating pair: a group whose non-null right-hand
// sides already agree is a chase no-op (the majority is the shared value
// and SameContent skips every row), so skipping violation-free groups
// leaves the output bit-identical while the fixpoint's final verification
// pass costs per-edit instead of per-group work.
type chaseRun struct {
	live *dc.LiveViolationSet
	fds  []chaseEntry
	dist *table.Distribution
	// groups and majors are the parallel pass's pooled buffers: the
	// violating-group partition borrowed from the live set and the
	// per-group majorities computed on the pool.
	groups [][]int
	majors []groupMajor
}

// groupMajor is one group's concurrently-computed fix.
type groupMajor struct {
	v  table.Value
	ok bool
}

// chaseDistPool recycles the per-task Distributions of parallel group
// passes; tasks on distinct goroutines cannot share the run's single
// scratch distribution.
var chaseDistPool = sync.Pool{New: func() any { return table.NewDistribution() }}

// minParallelGroups is the violating-group count below which the goroutine
// handoff of a parallel chase pass costs more than the pass.
const minParallelGroups = 8

// NewFDChase returns an FDChase with default limits.
func NewFDChase() *FDChase { return &FDChase{} }

// Name implements Algorithm.
func (f *FDChase) Name() string { return "fd-chase" }

// fd is one recognized functional dependency A → B.
type fd struct {
	lhs, rhs int
}

// asFD recognizes ¬(t1.A = t2.A ∧ t1.B ≠ t2.B) up to predicate order and
// returns the column indexes of A and B.
func asFD(c *dc.Constraint, schema *table.Schema) (fd, bool) {
	if len(c.Preds) != 2 {
		return fd{}, false
	}
	var eqAttr, neqAttr string
	for _, p := range c.Preds {
		if p.Left.IsConst || p.Right.IsConst || p.Left.Attr != p.Right.Attr || p.Left.Tuple == p.Right.Tuple {
			return fd{}, false
		}
		switch p.Op {
		case dc.OpEq:
			eqAttr = p.Left.Attr
		case dc.OpNeq:
			neqAttr = p.Left.Attr
		default:
			return fd{}, false
		}
	}
	if eqAttr == "" || neqAttr == "" {
		return fd{}, false
	}
	lhs, ok1 := schema.Index(eqAttr)
	rhs, ok2 := schema.Index(neqAttr)
	if !ok1 || !ok2 {
		return fd{}, false
	}
	return fd{lhs: lhs, rhs: rhs}, true
}

// Repair implements Algorithm.
func (f *FDChase) Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	return f.RepairInto(ctx, cs, dirty, nil)
}

// RepairInto implements ScratchRepairer: Repair writing into the
// caller-owned work table. The left-hand-side grouping reuses the live
// set's incrementally-maintained hash-join partition, and each pass
// visits only groups currently containing a violating pair (all non-empty
// groups below the live set's materialization threshold). Group visit
// order — first-violating-row order, or bucket-interning order on small
// tables — does not affect the result: groups are disjoint and each chase
// writes only its own group's right-hand sides, so the fixpoint is
// deterministic either way.
//
//lint:hotpath
func (f *FDChase) RepairInto(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table) (*table.Table, error) {
	return f.repairInto(ctx, cs, dirty, work, nil, nil)
}

// RepairIntoParallel implements PartitionedRepairer. The chase decomposes
// over the live set's bucket partition: within one FD pass every violating
// group reads and writes only its own rows, so the per-group majorities
// are computed concurrently on the session pool and the fixes applied
// serially in the serial pass's group order — bit-identical to RepairInto
// (TestParallelRepairGoldenEquivalence), with the full violation
// derivations bucket-parallel on the pool as well.
func (f *FDChase) RepairIntoParallel(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool) (*table.Table, error) {
	return f.repairInto(ctx, cs, dirty, work, pool, nil)
}

// RepairIntoPlanned implements PlannedRepairer: the run's live violation
// set executes behind the session's compiled constraint-set plan. Group
// enumeration stays on the exact join-column partition (its buckets are
// equivalence classes; a shared coarser partition would merge them), so
// the chase's fixes are untouched by partition sharing — output
// bit-identical to RepairInto by the plan contract.
func (f *FDChase) RepairIntoPlanned(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool, plan dc.SetPlanner) (*table.Table, error) {
	return f.repairInto(ctx, cs, dirty, work, pool, plan)
}

func (f *FDChase) repairInto(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool, plan dc.SetPlanner) (*table.Table, error) {
	work = prepareWork(dirty, work)
	st, ok := f.runs.Get().(*chaseRun)
	if !ok {
		st = &chaseRun{live: dc.NewLiveViolationSet(), dist: table.NewDistribution()}
	}
	defer f.runs.Put(st)
	st.live.UsePlan(plan)
	if pool != nil {
		st.live.Pool = pool
		defer func() { st.live.Pool = nil }()
	}
	st.fds = st.fds[:0]
	for _, c := range cs {
		if d, ok := asFD(c, work.Schema()); ok {
			st.fds = append(st.fds, chaseEntry{c: c, d: d})
		}
	}
	maxPasses := f.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 10
	}
	for pass := 0; pass < maxPasses; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed := false
		for _, e := range st.fds {
			chased, err := chaseFDWith(work, e, st, pool)
			if err != nil {
				return nil, err
			}
			if chased {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return work, nil
}

// chaseFDWith dispatches one FD pass to the parallel group path when a
// multi-worker pool is available and the partition is exposed, falling
// back to the serial chase otherwise.
func chaseFDWith(t *table.Table, e chaseEntry, st *chaseRun, pool *exec.Pool) (bool, error) {
	if pool.Workers() > 1 {
		changed, handled, err := chaseFDParallel(t, e, st, pool)
		if handled || err != nil {
			return changed, err
		}
	}
	return chaseFD(t, e, st)
}

// chaseFDParallel runs one FD pass with per-group majorities computed
// concurrently. The compute phase only reads the table; the apply phase
// then writes serially in the partition's group order, which is the serial
// chase's visit order — and since groups are disjoint in both the rows
// read and the (row, rhs) cells written, the resulting table is
// bit-identical to chaseFD's. handled is false when the live set declines
// to expose the partition (bypass tables, no join key); the caller then
// chases serially.
func chaseFDParallel(t *table.Table, e chaseEntry, st *chaseRun, pool *exec.Pool) (changed, handled bool, err error) {
	groups, ok, err := st.live.AppendViolatingGroups(e.c, t, st.groups[:0])
	st.groups = groups
	if err != nil || !ok {
		return false, false, err
	}
	if len(groups) < minParallelGroups {
		// Too few groups to amortize the fan-out; compute serially over the
		// same partition (still bit-identical: same groups, same order).
		for _, rows := range groups {
			if chaseGroup(t, e, st.dist, rows) {
				changed = true
			}
		}
		return changed, true, nil
	}
	if cap(st.majors) >= len(groups) {
		st.majors = st.majors[:len(groups)]
	} else {
		st.majors = make([]groupMajor, len(groups))
	}
	majors := st.majors
	faults.Hit(faults.SiteBucketPartition)
	//lint:allow allocfree one fan-out closure per parallel derivation pass, amortized over every group it partitions — not per coalition sample
	pool.Map(len(groups), func(i int) {
		rows := groups[i]
		if len(rows) < 2 {
			majors[i] = groupMajor{}
			return
		}
		dist := chaseDistPool.Get().(*table.Distribution)
		dist.Reset()
		for _, r := range rows {
			dist.Observe(t.Get(r, e.d.rhs))
		}
		majors[i].v, majors[i].ok = dist.Mode()
		chaseDistPool.Put(dist)
	})
	for i, rows := range groups {
		if len(rows) < 2 || !majors[i].ok {
			continue
		}
		major := majors[i].v
		for _, r := range rows {
			cur := t.Get(r, e.d.rhs)
			if !cur.IsNull() && !cur.SameContent(major) {
				t.Set(r, e.d.rhs, major)
				changed = true
			}
		}
	}
	return changed, true, nil
}

// chaseGroup forces one group's majority right-hand side, the shared
// kernel of the serial and small-partition paths.
func chaseGroup(t *table.Table, e chaseEntry, dist *table.Distribution, rows []int) bool {
	if len(rows) < 2 {
		return false
	}
	dist.Reset()
	for _, i := range rows {
		dist.Observe(t.Get(i, e.d.rhs))
	}
	major, ok := dist.Mode()
	if !ok {
		return false
	}
	changed := false
	for _, i := range rows {
		cur := t.Get(i, e.d.rhs)
		if !cur.IsNull() && !cur.SameContent(major) {
			t.Set(i, e.d.rhs, major)
			changed = true
		}
	}
	return changed
}

// chaseFD forces the majority right-hand side within every left-hand-side
// group that currently violates the FD; returns whether anything changed.
// Violation-free groups are provably no-ops (their non-null right-hand
// sides agree up to SameContent) and are skipped via the live set.
func chaseFD(t *table.Table, e chaseEntry, st *chaseRun) (bool, error) {
	changed := false
	//lint:allow allocfree one visitor closure per chase pass, amortized over every violating group — not per coalition sample
	ok, err := st.live.ForEachViolatingGroup(e.c, t, func(rows []int) error {
		if chaseGroup(t, e, st.dist, rows) {
			changed = true
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	if !ok {
		// Defensive: an FD-shaped constraint always has an equality join
		// key, so the partition must exist.
		return false, nil
	}
	return changed, nil
}
