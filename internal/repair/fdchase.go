package repair

import (
	"context"
	"sort"

	"repro/internal/dc"
	"repro/internal/table"
)

// FDChase is an equivalence-class chase baseline in the spirit of
// Bohannon et al.'s CFD repairs (ICDE 2007), restricted to FD-shaped DCs
// ¬(t1.A = t2.A ∧ t1.B ≠ t2.B), read as the functional dependency A → B.
// Rows are grouped by the left-hand side value; within each group the
// right-hand side is forced to the group's majority value (ties to the
// first-observed value). Groups are chased in constraint order until a
// fixpoint, since repairing one FD can re-group another.
//
// Constraints that are not FD-shaped are ignored by this black box — which
// is itself interesting to explain: T-REx assigns them zero contribution.
type FDChase struct {
	// MaxPasses bounds fixpoint iteration; 0 means the default (10).
	MaxPasses int
}

// NewFDChase returns an FDChase with default limits.
func NewFDChase() *FDChase { return &FDChase{} }

// Name implements Algorithm.
func (f *FDChase) Name() string { return "fd-chase" }

// fd is one recognized functional dependency A → B.
type fd struct {
	lhs, rhs int
}

// asFD recognizes ¬(t1.A = t2.A ∧ t1.B ≠ t2.B) up to predicate order and
// returns the column indexes of A and B.
func asFD(c *dc.Constraint, schema *table.Schema) (fd, bool) {
	if len(c.Preds) != 2 {
		return fd{}, false
	}
	var eqAttr, neqAttr string
	for _, p := range c.Preds {
		if p.Left.IsConst || p.Right.IsConst || p.Left.Attr != p.Right.Attr || p.Left.Tuple == p.Right.Tuple {
			return fd{}, false
		}
		switch p.Op {
		case dc.OpEq:
			eqAttr = p.Left.Attr
		case dc.OpNeq:
			neqAttr = p.Left.Attr
		default:
			return fd{}, false
		}
	}
	if eqAttr == "" || neqAttr == "" {
		return fd{}, false
	}
	lhs, ok1 := schema.Index(eqAttr)
	rhs, ok2 := schema.Index(neqAttr)
	if !ok1 || !ok2 {
		return fd{}, false
	}
	return fd{lhs: lhs, rhs: rhs}, true
}

// Repair implements Algorithm.
func (f *FDChase) Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	work := dirty.Clone()
	var fds []fd
	for _, c := range cs {
		if d, ok := asFD(c, work.Schema()); ok {
			fds = append(fds, d)
		}
	}
	maxPasses := f.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 10
	}
	for pass := 0; pass < maxPasses; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed := false
		for _, d := range fds {
			if chased := chaseFD(work, d); chased {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return work, nil
}

// chaseFD forces the majority right-hand side within every left-hand-side
// group; returns whether anything changed.
func chaseFD(t *table.Table, d fd) bool {
	groups := make(map[string][]int)
	var keys []string
	for i := 0; i < t.NumRows(); i++ {
		v := t.Get(i, d.lhs)
		if v.IsNull() {
			continue
		}
		k := v.Key()
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], i)
	}
	sort.Strings(keys)
	changed := false
	for _, k := range keys {
		rows := groups[k]
		if len(rows) < 2 {
			continue
		}
		dist := table.NewDistribution()
		for _, i := range rows {
			dist.Observe(t.Get(i, d.rhs))
		}
		major, ok := dist.Mode()
		if !ok {
			continue
		}
		for _, i := range rows {
			cur := t.Get(i, d.rhs)
			if !cur.IsNull() && !cur.SameContent(major) {
				t.Set(i, d.rhs, major)
				changed = true
			}
		}
	}
	return changed
}
