package repair

import (
	"context"
	"sync"

	"repro/internal/dc"
	"repro/internal/table"
)

// FDChase is an equivalence-class chase baseline in the spirit of
// Bohannon et al.'s CFD repairs (ICDE 2007), restricted to FD-shaped DCs
// ¬(t1.A = t2.A ∧ t1.B ≠ t2.B), read as the functional dependency A → B.
// Rows are grouped by the left-hand side value; within each group the
// right-hand side is forced to the group's majority value (ties to the
// first-observed value). Groups are chased in constraint order until a
// fixpoint, since repairing one FD can re-group another.
//
// Constraints that are not FD-shaped are ignored by this black box — which
// is itself interesting to explain: T-REx assigns them zero contribution.
type FDChase struct {
	// MaxPasses bounds fixpoint iteration; 0 means the default (10).
	MaxPasses int
	// runs pools the per-run scratch state behind the ScratchRepairer
	// contract.
	runs sync.Pool
}

// chaseEntry pairs a recognized FD with the constraint it came from, so
// the chase can reuse the constraint's hash-join partition.
type chaseEntry struct {
	c *dc.Constraint
	d fd
}

// chaseRun is the reusable per-run state of one RepairInto invocation. The
// live violation set steers each chase pass to exactly the groups that
// currently contain a violating pair: a group whose non-null right-hand
// sides already agree is a chase no-op (the majority is the shared value
// and SameContent skips every row), so skipping violation-free groups
// leaves the output bit-identical while the fixpoint's final verification
// pass costs per-edit instead of per-group work.
type chaseRun struct {
	live *dc.LiveViolationSet
	fds  []chaseEntry
	dist *table.Distribution
}

// NewFDChase returns an FDChase with default limits.
func NewFDChase() *FDChase { return &FDChase{} }

// Name implements Algorithm.
func (f *FDChase) Name() string { return "fd-chase" }

// fd is one recognized functional dependency A → B.
type fd struct {
	lhs, rhs int
}

// asFD recognizes ¬(t1.A = t2.A ∧ t1.B ≠ t2.B) up to predicate order and
// returns the column indexes of A and B.
func asFD(c *dc.Constraint, schema *table.Schema) (fd, bool) {
	if len(c.Preds) != 2 {
		return fd{}, false
	}
	var eqAttr, neqAttr string
	for _, p := range c.Preds {
		if p.Left.IsConst || p.Right.IsConst || p.Left.Attr != p.Right.Attr || p.Left.Tuple == p.Right.Tuple {
			return fd{}, false
		}
		switch p.Op {
		case dc.OpEq:
			eqAttr = p.Left.Attr
		case dc.OpNeq:
			neqAttr = p.Left.Attr
		default:
			return fd{}, false
		}
	}
	if eqAttr == "" || neqAttr == "" {
		return fd{}, false
	}
	lhs, ok1 := schema.Index(eqAttr)
	rhs, ok2 := schema.Index(neqAttr)
	if !ok1 || !ok2 {
		return fd{}, false
	}
	return fd{lhs: lhs, rhs: rhs}, true
}

// Repair implements Algorithm.
func (f *FDChase) Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	return f.RepairInto(ctx, cs, dirty, nil)
}

// RepairInto implements ScratchRepairer: Repair writing into the
// caller-owned work table. The left-hand-side grouping reuses the live
// set's incrementally-maintained hash-join partition, and each pass
// visits only groups currently containing a violating pair (all non-empty
// groups below the live set's materialization threshold). Group visit
// order — first-violating-row order, or bucket-interning order on small
// tables — does not affect the result: groups are disjoint and each chase
// writes only its own group's right-hand sides, so the fixpoint is
// deterministic either way.
func (f *FDChase) RepairInto(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table) (*table.Table, error) {
	work = prepareWork(dirty, work)
	st, ok := f.runs.Get().(*chaseRun)
	if !ok {
		st = &chaseRun{live: dc.NewLiveViolationSet(), dist: table.NewDistribution()}
	}
	defer f.runs.Put(st)
	st.fds = st.fds[:0]
	for _, c := range cs {
		if d, ok := asFD(c, work.Schema()); ok {
			st.fds = append(st.fds, chaseEntry{c: c, d: d})
		}
	}
	maxPasses := f.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 10
	}
	for pass := 0; pass < maxPasses; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed := false
		for _, e := range st.fds {
			chased, err := chaseFD(work, e, st)
			if err != nil {
				return nil, err
			}
			if chased {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return work, nil
}

// chaseFD forces the majority right-hand side within every left-hand-side
// group that currently violates the FD; returns whether anything changed.
// Violation-free groups are provably no-ops (their non-null right-hand
// sides agree up to SameContent) and are skipped via the live set.
func chaseFD(t *table.Table, e chaseEntry, st *chaseRun) (bool, error) {
	changed := false
	ok, err := st.live.ForEachViolatingGroup(e.c, t, func(rows []int) error {
		if len(rows) < 2 {
			return nil
		}
		st.dist.Reset()
		for _, i := range rows {
			st.dist.Observe(t.Get(i, e.d.rhs))
		}
		major, ok := st.dist.Mode()
		if !ok {
			return nil
		}
		for _, i := range rows {
			cur := t.Get(i, e.d.rhs)
			if !cur.IsNull() && !cur.SameContent(major) {
				t.Set(i, e.d.rhs, major)
				changed = true
			}
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	if !ok {
		// Defensive: an FD-shaped constraint always has an equality join
		// key, so the partition must exist.
		return false, nil
	}
	return changed, nil
}
