// Package repair implements the repair algorithms that T-REx explains.
//
// T-REx treats the repairer as a black box: everything the explainer needs
// is the Algorithm interface below. The package provides five concrete
// black boxes spanning the approaches cited by the paper:
//
//   - Algorithm1: the paper's own worked example (rule per DC, most-common
//     and conditional-most-probable fixes) generalized to arbitrary DC sets;
//   - HoloSim: a HoloClean-style probabilistic cleaner (detect → candidate
//     domains → features → log-linear inference), substituting for the real
//     HoloClean per DESIGN.md §6;
//   - Greedy: a holistic violation-hypergraph baseline in the spirit of
//     Chu, Ilyas and Papotti (ICDE 2013);
//   - FDChase: an equivalence-class chase for FD-shaped DCs in the spirit
//     of Bohannon et al. (ICDE 2007);
//   - plus test doubles (Func) for failure injection.
package repair

import (
	"context"
	"fmt"

	"repro/internal/dc"
	"repro/internal/table"
)

// Algorithm is the black-box contract: given constraints and a dirty table,
// produce a repaired table. Implementations must
//
//   - not mutate the input table (work on a clone),
//   - be deterministic for a fixed input (all randomness seeded at
//     construction), because Shapley values are defined over a function,
//   - respect context cancellation on long runs.
type Algorithm interface {
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
	// Repair returns the cleaned version of dirty under the constraint set
	// cs. The returned table is freshly allocated.
	Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error)
}

// Func adapts a function to the Algorithm interface; used by tests for
// failure injection (errors, hangs, panics).
type Func struct {
	// AlgName is returned by Name.
	AlgName string
	// Fn is invoked by Repair.
	Fn func(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error)
}

// Name implements Algorithm.
func (f Func) Name() string { return f.AlgName }

// Repair implements Algorithm.
func (f Func) Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	return f.Fn(ctx, cs, dirty)
}

// Passthrough is the identity black box: it returns the input table
// unchanged (and unallocated). It exists for benchmarks and allocation
// tests that need to isolate the coalition-evaluation harness from any
// repairer cost; it deliberately violates the "freshly allocated" return
// contract, which is harmless for measurement.
type Passthrough struct{}

// Name implements Algorithm.
func (Passthrough) Name() string { return "passthrough" }

// Repair implements Algorithm.
func (Passthrough) Repair(_ context.Context, _ []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	return dirty, nil
}

// CellRepaired is the binary view Alg|t[A] of the paper (§2.1): it runs the
// black box on (cs, dirty) and reports 1 when the cell of interest ends up
// with the target clean value, 0 otherwise. The target is the value the
// full repair assigned, so "repaired" means "repaired to the same value as
// under the complete input".
func CellRepaired(ctx context.Context, alg Algorithm, cs []*dc.Constraint, dirty *table.Table, cell table.CellRef, target table.Value) (float64, error) {
	clean, err := alg.Repair(ctx, cs, dirty)
	if err != nil {
		return 0, fmt.Errorf("repair: black box %s: %w", alg.Name(), err)
	}
	if clean.NumRows() != dirty.NumRows() || clean.NumCols() != dirty.NumCols() {
		return 0, fmt.Errorf("repair: black box %s changed table shape", alg.Name())
	}
	if clean.GetRef(cell).SameContent(target) {
		return 1, nil
	}
	return 0, nil
}

// All returns one instance of every production algorithm, for the
// black-box-agnosticism experiment (E12).
func All(seed int64) []Algorithm {
	return []Algorithm{
		NewAlgorithm1(),
		NewHoloSim(seed),
		NewGreedy(),
		NewFDChase(),
	}
}
