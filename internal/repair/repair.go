// Package repair implements the repair algorithms that T-REx explains.
//
// T-REx treats the repairer as a black box: everything the explainer needs
// is the Algorithm interface below. The package provides five concrete
// black boxes spanning the approaches cited by the paper:
//
//   - Algorithm1: the paper's own worked example (rule per DC, most-common
//     and conditional-most-probable fixes) generalized to arbitrary DC sets;
//   - HoloSim: a HoloClean-style probabilistic cleaner (detect → candidate
//     domains → features → log-linear inference), substituting for the real
//     HoloClean per DESIGN.md §6;
//   - Greedy: a holistic violation-hypergraph baseline in the spirit of
//     Chu, Ilyas and Papotti (ICDE 2013);
//   - FDChase: an equivalence-class chase for FD-shaped DCs in the spirit
//     of Bohannon et al. (ICDE 2007);
//   - plus test doubles (Func) for failure injection.
//
// # The in-place repair protocol
//
// All four production black boxes additionally implement ScratchRepairer,
// the zero-allocation contract the Shapley evaluation loop runs against:
// RepairInto refreshes a caller-owned work table from the dirty input and
// repairs it in place, while every per-run buffer the algorithm needs
// (statistics, scan indexes, candidate domains, violation lists) is pooled
// inside the implementation. The rules of the contract:
//
//   - dirty is never mutated; only work is. work == nil allocates a fresh
//     clone, so Repair(ctx, cs, dirty) ≡ RepairInto(ctx, cs, dirty, nil)
//     and the two paths are behaviourally identical (golden-tested).
//   - the returned table is work itself (or the fresh clone); callers that
//     recycle it across calls hit the steady-state zero-allocation path,
//     because the work-table refresh (table.CopyFrom) logs per-cell deltas
//     that keep the pooled dc.ScanIndex on its incremental bucket path.
//     When the dirty table changed shape since the last refresh (a row
//     insert or swap-delete renumbered tuples), CopyFrom resets the work
//     table's edit log instead, so the pooled index rebuilds rather than
//     replaying cell deltas against reshuffled row identities.
//   - determinism is preserved: for a fixed (cs, dirty) input the output
//     is byte-identical to Repair's, whatever state the pooled buffers
//     carry over — Shapley values are defined over a function, so any
//     carried-over nondeterminism would corrupt the explanation.
//   - implementations are safe for concurrent RepairInto calls (the run
//     state is a sync.Pool), but a single work table must not be shared by
//     concurrent callers.
package repair

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/table"
)

// Algorithm is the black-box contract: given constraints and a dirty table,
// produce a repaired table. Implementations must
//
//   - not mutate the input table (work on a clone),
//   - be deterministic for a fixed input (all randomness seeded at
//     construction), because Shapley values are defined over a function,
//   - respect context cancellation on long runs.
type Algorithm interface {
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
	// Repair returns the cleaned version of dirty under the constraint set
	// cs. The returned table is freshly allocated.
	Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error)
}

// ScratchRepairer is the in-place extension of Algorithm: RepairInto
// copies dirty into work (allocating only when work is nil or its shape
// cannot be reused), repairs work in place, and returns it. See the package
// comment for the full contract. CellRepaired detects this interface and
// recycles one pooled work table across evaluations, which removes the
// per-evaluation Clone() from the repair hot path.
type ScratchRepairer interface {
	Algorithm
	// RepairInto is Repair writing into caller-owned scratch storage. The
	// returned table is work when work != nil, a fresh table otherwise.
	RepairInto(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table) (*table.Table, error)
}

// PartitionedRepairer is the parallel extension of ScratchRepairer: the
// black box accepts a session worker pool and fans its disjoint-bucket
// passes across it — full violation derivations run bucket-parallel
// through the live set, and black boxes whose repair step itself
// decomposes over disjoint join groups (the FD chase) compute per-group
// fixes concurrently and apply them serially in the serial pass's order.
//
// The contract is strict bit-identity: for any (cs, dirty, pool),
// RepairIntoParallel produces exactly the table RepairInto produces — the
// serial path stays the golden cross-validation reference (see
// TestParallelRepairGoldenEquivalence). Parallelism is a scheduling
// choice, never a semantic one, because Shapley values are defined over a
// deterministic function of the input.
//
// All four production black boxes implement it. A nil pool (or a
// one-worker pool) degrades to the serial path.
type PartitionedRepairer interface {
	ScratchRepairer
	// RepairIntoParallel is RepairInto with disjoint-bucket passes fanned
	// across pool.
	RepairIntoParallel(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool) (*table.Table, error)
}

// PlannedRepairer is the constraint-set-plan extension of
// PartitionedRepairer: the black box accepts the session's compiled set
// plan (dc.SetPlanner) and installs it on its pooled live violation set,
// so every violation scan of the run shares partitions across
// constraints, evaluates selectivity-ordered kernels behind pre-filter
// bitmaps, and pre-sizes its hash maps from carried cardinalities.
//
// Like parallelism, planning is a scheduling choice, never a semantic
// one: for any (cs, dirty, pool, plan), RepairIntoPlanned produces
// exactly the table RepairInto produces — the unplanned serial path
// stays the golden cross-validation reference. A nil plan is exactly
// RepairIntoParallel. All four production black boxes implement it.
type PlannedRepairer interface {
	PartitionedRepairer
	// RepairIntoPlanned is RepairIntoParallel executing behind the
	// compiled constraint-set plan.
	RepairIntoPlanned(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool, plan dc.SetPlanner) (*table.Table, error)
}

// pooledStats is the generation-checked statistics snapshot shared by the
// black boxes' pooled run states: fresh returns statistics for work's
// current contents, catching the pooled snapshot up incrementally
// (table.Stats.Sync: per-column deltas from the work table's edit log,
// full rebuild on overrun) when the table pointer or generation moved
// since the last call.
type pooledStats struct {
	stats *table.Stats
}

func (p *pooledStats) fresh(work *table.Table) *table.Stats {
	if p.stats == nil {
		p.stats = table.NewStats(work)
		return p.stats
	}
	p.stats.Sync(work)
	return p.stats
}

// prepareWork refreshes work from dirty for an in-place repair run,
// handling the nil (allocate) and aliased (defensive clone) cases shared by
// every ScratchRepairer implementation.
func prepareWork(dirty, work *table.Table) *table.Table {
	if work == nil || work == dirty {
		return dirty.Clone()
	}
	work.CopyFrom(dirty)
	return work
}

// Func adapts a function to the Algorithm interface; used by tests for
// failure injection (errors, hangs, panics).
type Func struct {
	// AlgName is returned by Name.
	AlgName string
	// Fn is invoked by Repair.
	Fn func(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error)
}

// Name implements Algorithm.
func (f Func) Name() string { return f.AlgName }

// Repair implements Algorithm.
func (f Func) Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	return f.Fn(ctx, cs, dirty)
}

// Passthrough is the identity black box: it returns the input table
// unchanged (and unallocated). It exists for benchmarks and allocation
// tests that need to isolate the coalition-evaluation harness from any
// repairer cost; it deliberately violates the "freshly allocated" return
// contract, which is harmless for measurement.
type Passthrough struct{}

// Name implements Algorithm.
func (Passthrough) Name() string { return "passthrough" }

// Repair implements Algorithm.
func (Passthrough) Repair(_ context.Context, _ []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	return dirty, nil
}

// workPool recycles the work tables CellRepaired hands to ScratchRepairer
// black boxes. Tables of any shape share the pool: RepairInto's refresh
// resizes a mismatched table in place, so a mixed workload merely warms the
// pool toward the shapes it actually evaluates.
var workPool sync.Pool

// CellRepaired is the binary view Alg|t[A] of the paper (§2.1): it runs the
// black box on (cs, dirty) and reports 1 when the cell of interest ends up
// with the target clean value, 0 otherwise. The target is the value the
// full repair assigned, so "repaired" means "repaired to the same value as
// under the complete input".
//
// When the black box implements ScratchRepairer the repair runs in a
// pooled work table instead of a fresh clone, making the whole
// evaluation→repair round trip allocation-free in steady state — the hot
// path of every Shapley sampling loop.
func CellRepaired(ctx context.Context, alg Algorithm, cs []*dc.Constraint, dirty *table.Table, cell table.CellRef, target table.Value) (float64, error) {
	return CellRepairedWith(ctx, alg, cs, dirty, cell, target, nil)
}

// CellRepairedWith is CellRepaired with a session worker pool: black boxes
// implementing PartitionedRepairer run their disjoint-bucket passes on it
// (bit-identical to the serial path by contract). A nil or one-worker pool
// is exactly CellRepaired.
func CellRepairedWith(ctx context.Context, alg Algorithm, cs []*dc.Constraint, dirty *table.Table, cell table.CellRef, target table.Value, pool *exec.Pool) (float64, error) {
	return CellRepairedPlanned(ctx, alg, cs, dirty, cell, target, pool, nil)
}

// CellRepairedPlanned is CellRepairedWith with a compiled constraint-set
// plan: black boxes implementing PlannedRepairer run their violation
// scans behind it (bit-identical to the unplanned path by contract). A
// nil plan is exactly CellRepairedWith.
func CellRepairedPlanned(ctx context.Context, alg Algorithm, cs []*dc.Constraint, dirty *table.Table, cell table.CellRef, target table.Value, pool *exec.Pool, plan dc.SetPlanner) (float64, error) {
	sr, ok := alg.(ScratchRepairer)
	if !ok {
		clean, err := alg.Repair(ctx, cs, dirty)
		if err != nil {
			return 0, fmt.Errorf("repair: black box %s: %w", alg.Name(), err)
		}
		return cellRepairedResult(alg, dirty, clean, cell, target)
	}
	work, _ := workPool.Get().(*table.Table)
	var clean *table.Table
	var err error
	if pl, isPl := alg.(PlannedRepairer); isPl && plan != nil {
		clean, err = pl.RepairIntoPlanned(ctx, cs, dirty, work, pool, plan)
	} else if pr, isPar := alg.(PartitionedRepairer); isPar && pool.Workers() > 1 {
		clean, err = pr.RepairIntoParallel(ctx, cs, dirty, work, pool)
	} else {
		clean, err = sr.RepairInto(ctx, cs, dirty, work)
	}
	if err != nil {
		if work != nil {
			workPool.Put(work)
		}
		return 0, fmt.Errorf("repair: black box %s: %w", alg.Name(), err)
	}
	out, err := cellRepairedResult(alg, dirty, clean, cell, target)
	workPool.Put(clean)
	return out, err
}

// cellRepairedResult checks the repaired shape and reads off the binary
// view for the cell of interest.
func cellRepairedResult(alg Algorithm, dirty, clean *table.Table, cell table.CellRef, target table.Value) (float64, error) {
	if clean.NumRows() != dirty.NumRows() || clean.NumCols() != dirty.NumCols() {
		return 0, fmt.Errorf("repair: black box %s changed table shape", alg.Name())
	}
	if clean.GetRef(cell).SameContent(target) {
		return 1, nil
	}
	return 0, nil
}

// All returns one instance of every production algorithm, for the
// black-box-agnosticism experiment (E12).
func All(seed int64) []Algorithm {
	return []Algorithm{
		NewAlgorithm1(),
		NewHoloSim(seed),
		NewGreedy(),
		NewFDChase(),
	}
}
