package repair

import (
	"context"
	"errors"
	"testing"

	"repro/internal/data"
	"repro/internal/table"
)

func trainingSet(t *testing.T, n int) []TrainingExample {
	t.Helper()
	var out []TrainingExample
	for i := 0; i < n; i++ {
		clean := data.GenerateSoccer(data.SoccerConfig{Leagues: 2, TeamsPerLeague: 6, Seed: int64(100 + i)})
		dirty, injections, err := data.Inject(clean, data.InjectSpec{
			Rate: 0.06, Columns: []string{"Country", "City"}, Kinds: []data.ErrorKind{data.ErrorTypo}, Seed: int64(200 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(injections) == 0 {
			continue
		}
		out = append(out, TrainingExample{Dirty: dirty, Clean: clean, DCs: data.SoccerDCs()})
	}
	return out
}

func TestCellAccuracy(t *testing.T) {
	clean := table.MustFromStrings([]string{"A"}, [][]string{{"x"}, {"y"}})
	dirty := clean.Clone()
	dirty.Set(0, 0, table.String("z")) // one dirty cell

	perfect := clean.Clone()
	s, err := cellAccuracy(dirty, clean, perfect)
	if err != nil || s != 1 {
		t.Errorf("perfect repair score = %v, %v; want 1", s, err)
	}
	noop := dirty.Clone()
	s, _ = cellAccuracy(dirty, clean, noop)
	if s != 0 {
		t.Errorf("no-op score = %v, want 0", s)
	}
	vandal := clean.Clone()
	vandal.Set(1, 0, table.String("broken")) // broke a clean cell
	s, _ = cellAccuracy(dirty, clean, vandal)
	if s != 0 { // +1 restored, -1 broken
		t.Errorf("vandal score = %v, want 0", s)
	}
	short := table.New(clean.Schema())
	if _, err := cellAccuracy(dirty, clean, short); err == nil {
		t.Error("shape mismatch must error")
	}
}

func TestTrainImprovesOrMaintains(t *testing.T) {
	examples := trainingSet(t, 3)
	if len(examples) == 0 {
		t.Skip("no training examples landed")
	}
	ctx := context.Background()

	baseline := NewHoloSim(1)
	baseScore := 0.0
	for _, ex := range examples {
		out, err := baseline.Repair(ctx, ex.DCs, ex.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		s, err := cellAccuracy(ex.Dirty, ex.Clean, out)
		if err != nil {
			t.Fatal(err)
		}
		baseScore += s
	}

	trained := NewHoloSim(1)
	trainedScore, err := trained.Train(ctx, examples)
	if err != nil {
		t.Fatal(err)
	}
	if trainedScore < baseScore {
		t.Errorf("training regressed: %v -> %v", baseScore, trainedScore)
	}
}

func TestTrainDeterministic(t *testing.T) {
	examples := trainingSet(t, 2)
	if len(examples) == 0 {
		t.Skip("no training examples landed")
	}
	a, b := NewHoloSim(1), NewHoloSim(1)
	sa, err := a.Train(context.Background(), examples)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Train(context.Background(), examples)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb || a.WFreq != b.WFreq || a.WCooc != b.WCooc || a.WViol != b.WViol || a.WPrior != b.WPrior {
		t.Fatalf("training nondeterministic: %+v vs %+v", a, b)
	}
}

func TestTrainValidation(t *testing.T) {
	h := NewHoloSim(1)
	if _, err := h.Train(context.Background(), nil); err == nil {
		t.Error("empty training set must error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	examples := trainingSet(t, 1)
	if len(examples) == 0 {
		t.Skip("no training examples landed")
	}
	if _, err := h.Train(ctx, examples); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestTrainedModelGeneralizes(t *testing.T) {
	// Held-out instance: the trained weights must still clean a fresh
	// table at least as well as chance (restore a majority of typos).
	examples := trainingSet(t, 3)
	if len(examples) == 0 {
		t.Skip("no training examples landed")
	}
	trained := NewHoloSim(1)
	if _, err := trained.Train(context.Background(), examples); err != nil {
		t.Fatal(err)
	}

	clean := data.GenerateSoccer(data.SoccerConfig{Leagues: 2, TeamsPerLeague: 8, Seed: 999})
	dirty, injections, err := data.Inject(clean, data.InjectSpec{
		Rate: 0.05, Columns: []string{"Country"}, Kinds: []data.ErrorKind{data.ErrorTypo}, Seed: 998,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(injections) < 2 {
		t.Skip("too few holdout injections")
	}
	out, err := trained.Repair(context.Background(), data.SoccerDCs(), dirty)
	if err != nil {
		t.Fatal(err)
	}
	restored := 0
	for _, inj := range injections {
		if out.GetRef(inj.Ref).SameContent(inj.Clean) {
			restored++
		}
	}
	if restored*2 < len(injections) {
		t.Errorf("holdout: restored %d/%d", restored, len(injections))
	}
}
