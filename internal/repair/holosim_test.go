package repair

import (
	"context"
	"errors"
	"testing"

	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/table"
)

func TestHoloSimRepairsLaLiga(t *testing.T) {
	ll := data.NewLaLiga()
	h := NewHoloSim(1)
	clean, err := h.Repair(context.Background(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	// HoloSim need not match Algorithm 1 cell for cell, but it must end
	// consistent and must fix the cell of interest the same way.
	ok, err := dc.Consistent(ll.DCs, clean)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		vs, _ := dc.AllViolations(ll.DCs, clean)
		t.Fatalf("HoloSim left violations: %v\n%s", vs, clean)
	}
	if got := clean.GetRef(ll.CellOfInterest); !got.Equal(table.String("Spain")) {
		t.Errorf("t5[Country] = %v, want Spain", got)
	}
}

func TestHoloSimDeterministic(t *testing.T) {
	ll := data.NewLaLiga()
	a, err := NewHoloSim(5).Repair(context.Background(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHoloSim(5).Repair(context.Background(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("HoloSim must be deterministic for a fixed seed")
	}
}

func TestHoloSimDoesNotMutateInput(t *testing.T) {
	ll := data.NewLaLiga()
	snapshot := ll.Dirty.Clone()
	if _, err := NewHoloSim(1).Repair(context.Background(), ll.DCs, ll.Dirty); err != nil {
		t.Fatal(err)
	}
	if !ll.Dirty.Equal(snapshot) {
		t.Fatal("HoloSim mutated its input")
	}
}

func TestHoloSimCleanInputIsFixpoint(t *testing.T) {
	ll := data.NewLaLiga()
	out, err := NewHoloSim(1).Repair(context.Background(), ll.DCs, ll.Clean)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(ll.Clean) {
		t.Fatal("a consistent table must pass through unchanged")
	}
}

func TestHoloSimNoConstraints(t *testing.T) {
	ll := data.NewLaLiga()
	out, err := NewHoloSim(1).Repair(context.Background(), nil, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(ll.Dirty) {
		t.Fatal("no constraints ⇒ no suspects ⇒ no changes")
	}
}

func TestHoloSimSyntheticTyposAccuracy(t *testing.T) {
	// HoloClean-style behaviour: on a larger table with injected typos in
	// FD-covered columns, most repairs should restore the ground truth.
	clean := data.GenerateSoccer(data.SoccerConfig{Leagues: 2, TeamsPerLeague: 8, Seed: 2})
	dirty, injections, err := data.Inject(clean, data.InjectSpec{
		Rate: 0.05, Columns: []string{"Country", "City"}, Kinds: []data.ErrorKind{data.ErrorTypo}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(injections) < 2 {
		t.Skip("too few injections landed")
	}
	out, err := NewHoloSim(1).Repair(context.Background(), data.SoccerDCs(), dirty)
	if err != nil {
		t.Fatal(err)
	}
	restored := 0
	for _, inj := range injections {
		if out.GetRef(inj.Ref).SameContent(inj.Clean) {
			restored++
		}
	}
	if restored*2 < len(injections) {
		t.Errorf("restored %d/%d injected errors; want a majority", restored, len(injections))
	}
}

func TestHoloSimContextCancel(t *testing.T) {
	ll := data.NewLaLiga()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewHoloSim(1).Repair(ctx, ll.DCs, ll.Dirty); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestHoloSimDomainCapRespected(t *testing.T) {
	ll := data.NewLaLiga()
	h := NewHoloSim(1)
	h.DomainCap = 2
	if _, err := h.Repair(context.Background(), ll.DCs, ll.Dirty); err != nil {
		t.Fatal(err)
	}
	stats := table.NewStats(ll.Dirty)
	dom := h.domain(ll.Dirty, stats, table.CellRef{Row: 4, Col: 2}, newHoloRun(h.seed))
	if len(dom) > 2 {
		t.Fatalf("domain size %d exceeds cap", len(dom))
	}
}

func TestHoloSimDetectFindsSuspects(t *testing.T) {
	ll := data.NewLaLiga()
	h := NewHoloSim(1)
	suspects, err := h.detect(ll.DCs, ll.Dirty, newHoloRun(h.seed))
	if err != nil {
		t.Fatal(err)
	}
	want := map[table.CellRef]bool{}
	for _, s := range suspects {
		want[s] = true
	}
	// The cell of interest and its League/City neighborhood must be
	// suspect; Year cells must not (C4 has no violations).
	if !want[table.CellRef{Row: 4, Col: 2}] {
		t.Error("t5[Country] must be suspect")
	}
	yearCol := ll.Dirty.Schema().MustIndex("Year")
	for _, s := range suspects {
		if s.Col == yearCol {
			t.Errorf("Year cell %v must not be suspect", s)
		}
	}
	// Deterministic order.
	for i := 1; i < len(suspects); i++ {
		if ll.Dirty.VecIndex(suspects[i-1]) >= ll.Dirty.VecIndex(suspects[i]) {
			t.Fatal("suspects must be sorted in vectorization order")
		}
	}
}
