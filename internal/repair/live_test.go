package repair

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dc"
	"repro/internal/table"
)

// referenceChase is the pre-live-set FDChase pass: chase every join group
// of every FD, violating or not, until a fixpoint. It pins the
// ForEachViolatingGroup optimisation — skipping groups with no violating
// pair — to the exhaustive behaviour.
func referenceChase(t *testing.T, cs []*dc.Constraint, dirty *table.Table) *table.Table {
	t.Helper()
	work := dirty.Clone()
	ix := dc.NewScanIndex()
	dist := table.NewDistribution()
	var fds []chaseEntry
	for _, c := range cs {
		if d, ok := asFD(c, work.Schema()); ok {
			fds = append(fds, chaseEntry{c: c, d: d})
		}
	}
	for pass := 0; pass < 10; pass++ {
		changed := false
		for _, e := range fds {
			_, err := e.c.ForEachJoinGroup(work, ix, func(rows []int) error {
				if len(rows) < 2 {
					return nil
				}
				dist.Reset()
				for _, i := range rows {
					dist.Observe(work.Get(i, e.d.rhs))
				}
				major, ok := dist.Mode()
				if !ok {
					return nil
				}
				for _, i := range rows {
					cur := work.Get(i, e.d.rhs)
					if !cur.IsNull() && !cur.SameContent(major) {
						work.Set(i, e.d.rhs, major)
						changed = true
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if !changed {
			break
		}
	}
	return work
}

// TestFDChaseViolatingGroupsEquivalence fuzzes FDChase (which now chases
// only groups containing a violating pair) against the exhaustive
// all-groups reference on randomized dirty tables.
func TestFDChaseViolatingGroupsEquivalence(t *testing.T) {
	cs, err := dc.ParseSet(`
C1: !(t1.Team = t2.Team & t1.City != t2.City)
C2: !(t1.City = t2.City & t1.Country != t2.Country)
`)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		// Straddle the live set's materialization threshold: small tables
		// exercise the bypass, larger ones the violating-group iterator.
		rows := 4 + rng.Intn(20)
		if trial%4 == 0 {
			rows = 64 + rng.Intn(40)
		}
		grid := make([][]string, rows)
		for i := range grid {
			grid[i] = []string{
				fmt.Sprintf("team%d", rng.Intn(5)),
				fmt.Sprintf("city%d", rng.Intn(4)),
				fmt.Sprintf("country%d", rng.Intn(3)),
			}
			if rng.Intn(6) == 0 {
				grid[i][rng.Intn(3)] = "null"
			}
		}
		dirty := table.MustFromStrings([]string{"Team", "City", "Country"}, grid)
		want := referenceChase(t, cs, dirty)
		got, err := NewFDChase().Repair(context.Background(), cs, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: FDChase diverged from exhaustive chase\ndirty:\n%s\ngot:\n%s\nwant:\n%s",
				trial, dirty, got, want)
		}
	}
}

// tablesIdenticalNaN compares two tables cell-wise with NaN counted equal
// to NaN (Table.Equal uses SameContent, under which NaN never equals
// itself, so identical NaN-bearing tables would spuriously differ).
func tablesIdenticalNaN(a, b *table.Table) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	for i := 0; i < a.NumRows(); i++ {
		for j := 0; j < a.NumCols(); j++ {
			av, bv := a.Get(i, j), b.Get(i, j)
			if av.IsNaN() && bv.IsNaN() {
				continue
			}
			if !av.SameContent(bv) {
				return false
			}
		}
	}
	return true
}

// TestBlackBoxesDeterministicWithNaNData runs every production black box
// twice on a table mixing NaN, ±0.0, int/float twins and nulls in join
// and value columns: no errors, stable shapes, and bit-identical outputs
// across runs (pooled run state must not leak).
func TestBlackBoxesDeterministicWithNaNData(t *testing.T) {
	schema := table.MustSchema(
		table.Column{Name: "Key"}, table.Column{Name: "Val"},
	)
	dirty := table.New(schema)
	nan := table.Float(math.NaN())
	for _, row := range [][]table.Value{
		{nan, table.String("a")},
		{nan, table.String("b")},
		{table.Float(0.0), table.String("a")},
		{table.Float(math.Copysign(0, -1)), table.String("b")},
		{table.Int(0), table.String("a")},
		{table.Int(1), table.String("c")},
		{table.Float(1.0), table.String("d")},
		{table.Null(), table.String("e")},
	} {
		if err := dirty.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	cs, err := dc.ParseSet("C1: !(t1.Key = t2.Key & t1.Val != t2.Val)")
	if err != nil {
		t.Fatal(err)
	}
	before := dirty.Clone()
	algs := []Algorithm{NewRuleRepair(cs), NewHoloSim(7), NewGreedy(), NewFDChase()}
	for _, alg := range algs {
		first, err := alg.Repair(context.Background(), cs, dirty)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		second, err := alg.Repair(context.Background(), cs, dirty)
		if err != nil {
			t.Fatalf("%s: second run: %v", alg.Name(), err)
		}
		if !tablesIdenticalNaN(first, second) {
			t.Fatalf("%s: nondeterministic on NaN data\nfirst:\n%s\nsecond:\n%s", alg.Name(), first, second)
		}
		if !tablesIdenticalNaN(dirty, before) {
			t.Fatalf("%s: mutated the dirty input", alg.Name())
		}
		// NaN keys join nothing: the two NaN rows disagree on Val but do not
		// violate C1, so every repairer must leave them untouched.
		for row := 0; row < 2; row++ {
			if got := first.Get(row, 1); !got.SameContent(dirty.Get(row, 1)) {
				t.Fatalf("%s: repaired NaN-keyed row %d from %v to %v; NaN = NaN never holds",
					alg.Name(), row, dirty.Get(row, 1), got)
			}
		}
	}
}
