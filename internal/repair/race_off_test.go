//go:build !race

package repair

const raceEnabled = false
