package repair

import (
	"context"
	"math"
	"math/rand"
	"slices"
	"sync"

	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/table"
)

// HoloSim is a HoloClean-style probabilistic repairer. It substitutes for
// the real HoloClean system (Rekatsinas et al., PVLDB 2017) that the
// paper's prototype queries — see DESIGN.md §6. The pipeline mirrors
// HoloClean's stages:
//
//  1. Error detection: a cell is suspect when its attribute appears in an
//     inequality predicate of a violated DC for a tuple participating in
//     the violation (the disagreeing attribute is the plausibly-wrong one;
//     the equality join keys are corroborated by the match). For DCs with
//     no inequality predicate, every mentioned attribute is suspect.
//  2. Domain generation: candidate values for a suspect cell are values
//     co-occurring (in other rows) with the tuple's other attributes, plus
//     the most frequent column values, capped at DomainCap.
//  3. Featurization: each candidate is scored by log-linear features —
//     column frequency, leave-one-out co-occurrence conditionals with the
//     remaining attributes of the tuple (own-row evidence is excluded so a
//     dirty value cannot corroborate itself), the number of DC violations
//     the tuple would be left in, and a prior for keeping the current
//     value.
//  4. Inference: argmax of the weighted feature sum becomes the repair.
//     Weights are fixed, interpretable defaults (HoloClean learns them;
//     fixed weights keep the black box deterministic, which Shapley
//     computation requires).
//
// The zero value is not usable; construct with NewHoloSim.
type HoloSim struct {
	// DomainCap bounds the candidate domain per cell.
	DomainCap int
	// WFreq, WCooc, WViol, WPrior are the log-linear feature weights.
	WFreq, WCooc, WViol, WPrior float64
	// MaxRounds bounds the detect-repair loop.
	MaxRounds int
	// seed drives tie-breaking noise injected into scores; it keeps the
	// algorithm deterministic per instance while avoiding systematic bias
	// between equal-scored candidates.
	seed int64
	// runs pools the per-run scratch state (rng, statistics, scan index,
	// suspect and candidate buffers) behind the ScratchRepairer contract.
	runs sync.Pool
}

// holoRun is the reusable per-run state of one RepairInto invocation. The
// rng is re-seeded at the top of every run, so pooled reuse cannot leak
// randomness between runs — determinism per (cs, dirty) input is
// preserved. Error detection reads the live violation set, so each
// committed repair retracts and re-derives only the repaired row's pairs
// before the next detect round.
type holoRun struct {
	rng  *rand.Rand
	live *dc.LiveViolationSet
	pooledStats
	vsBuf      []dc.Violation
	suspectSet map[table.CellRef]bool
	suspects   []table.CellRef
	domain     []table.Value
	domainSeen map[string]bool
	keyBuf     []byte
}

// newHoloRun builds an empty run state seeded for one HoloSim instance.
func newHoloRun(seed int64) *holoRun {
	//lint:allow allocfree pool-miss constructor: runs once per pooled run state, then RepairInto reuses it allocation-free
	return &holoRun{
		rng:  rand.New(rand.NewSource(seed)),
		live: dc.NewLiveViolationSet(),
		//lint:allow allocfree pool-miss constructor (see above)
		suspectSet: make(map[table.CellRef]bool),
		//lint:allow allocfree pool-miss constructor (see above)
		domainSeen: make(map[string]bool),
	}
}

// NewHoloSim constructs a HoloSim with the default feature weights.
func NewHoloSim(seed int64) *HoloSim {
	return &HoloSim{
		DomainCap: 16,
		WFreq:     1.0,
		WCooc:     3.0,
		WViol:     -4.0,
		WPrior:    1.0,
		MaxRounds: 5,
		seed:      seed,
	}
}

// Name implements Algorithm.
func (h *HoloSim) Name() string { return "holosim" }

// Repair implements Algorithm.
func (h *HoloSim) Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	return h.RepairInto(ctx, cs, dirty, nil)
}

// RepairInto implements ScratchRepairer: Repair writing into the
// caller-owned work table with pooled per-run buffers.
//
//lint:hotpath
func (h *HoloSim) RepairInto(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table) (*table.Table, error) {
	return h.repairInto(ctx, cs, dirty, work, nil, nil)
}

// RepairIntoParallel implements PartitionedRepairer: inference commits are
// sequential (each repair feeds the next round's detection), but the
// detect stage's full violation derivations fan their disjoint buckets
// across the session pool on large tables — output bit-identical to
// RepairInto by the live set's contract.
func (h *HoloSim) RepairIntoParallel(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool) (*table.Table, error) {
	return h.repairInto(ctx, cs, dirty, work, pool, nil)
}

// RepairIntoPlanned implements PlannedRepairer: the run's live violation
// set executes behind the session's compiled constraint-set plan —
// output bit-identical to RepairInto by the plan contract.
func (h *HoloSim) RepairIntoPlanned(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool, plan dc.SetPlanner) (*table.Table, error) {
	return h.repairInto(ctx, cs, dirty, work, pool, plan)
}

func (h *HoloSim) repairInto(ctx context.Context, cs []*dc.Constraint, dirty, work *table.Table, pool *exec.Pool, plan dc.SetPlanner) (*table.Table, error) {
	work = prepareWork(dirty, work)
	st, ok := h.runs.Get().(*holoRun)
	if !ok {
		st = newHoloRun(h.seed)
	}
	defer h.runs.Put(st)
	st.live.UsePlan(plan)
	if pool != nil {
		st.live.Pool = pool
		defer func() { st.live.Pool = nil }()
	}
	st.rng.Seed(h.seed)
	for round := 0; round < h.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		suspects, err := h.detect(cs, work, st)
		if err != nil {
			return nil, err
		}
		if len(suspects) == 0 {
			break
		}
		// The snapshot is refreshed only after a committed change, exactly
		// as the historical clone path did: score's transient probes bump
		// the table generation without changing content, so a lazy
		// generation check would rebuild once per suspect for nothing.
		stats := st.fresh(work)
		changed := false
		for _, cell := range suspects {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			best, ok, err := h.infer(cs, work, stats, cell, st)
			if err != nil {
				return nil, err
			}
			if ok && !work.GetRef(cell).SameContent(best) {
				work.SetRef(cell, best)
				changed = true
				stats = st.fresh(work)
			}
		}
		if !changed {
			break
		}
	}
	return work, nil
}

// suspectAttrs returns the attributes of c to mark suspect on a violation:
// those appearing in ≠/</>-style predicates between the two tuples, or all
// mentioned attributes when the constraint has none (e.g. pure equality
// conjunctions).
func suspectAttrs(c *dc.Constraint) []string {
	var out []string
	seen := make(map[string]bool)
	for _, p := range c.Preds {
		if p.Op == dc.OpEq || p.Left.IsConst || p.Right.IsConst {
			continue
		}
		for _, o := range []dc.Operand{p.Left, p.Right} {
			if !seen[o.Attr] {
				seen[o.Attr] = true
				out = append(out, o.Attr)
			}
		}
	}
	if len(out) == 0 {
		return c.Attributes()
	}
	return out
}

// detect returns the suspect cells in deterministic (vectorization) order,
// accumulating into the run's pooled buffers.
func (h *HoloSim) detect(cs []*dc.Constraint, t *table.Table, st *holoRun) ([]table.CellRef, error) {
	clear(st.suspectSet)
	st.suspects = st.suspects[:0]
	for _, c := range cs {
		vs, err := st.live.Append(c, t, st.vsBuf[:0])
		st.vsBuf = vs
		if err != nil {
			return nil, err
		}
		if len(vs) == 0 {
			continue
		}
		attrs := suspectAttrs(c)
		for _, v := range vs {
			for _, attr := range attrs {
				col := t.Schema().MustIndex(attr)
				for _, row := range []int{v.Row1, v.Row2} {
					ref := table.CellRef{Row: row, Col: col}
					if !st.suspectSet[ref] {
						st.suspectSet[ref] = true
						st.suspects = append(st.suspects, ref)
					}
				}
			}
		}
	}
	out := st.suspects
	//lint:allow allocfree one comparator closure per detect round; SortFunc does not retain it
	slices.SortFunc(out, func(a, b table.CellRef) int {
		return t.VecIndex(a) - t.VecIndex(b)
	})
	return out, nil
}

// infer scores the candidate domain of one suspect cell and returns the
// argmax candidate.
func (h *HoloSim) infer(cs []*dc.Constraint, t *table.Table, stats *table.Stats, cell table.CellRef, st *holoRun) (table.Value, bool, error) {
	candidates := h.domain(t, stats, cell, st)
	if len(candidates) == 0 {
		return table.Null(), false, nil
	}
	current := t.GetRef(cell)
	type scored struct {
		v table.Value
		s float64
	}
	best := scored{s: math.Inf(-1)}
	for _, cand := range candidates {
		score, err := h.score(cs, t, stats, cell, cand, st)
		if err != nil {
			return table.Null(), false, err
		}
		if cand.SameContent(current) {
			score += h.WPrior
		}
		// Deterministic per-run jitter breaks exact ties without biasing
		// the ordering of distinct scores.
		score += st.rng.Float64() * 1e-9
		if score > best.s {
			best = scored{v: cand, s: score}
		}
	}
	return best.v, true, nil
}

// domain builds the candidate set: current value, values of the column
// co-occurring with the tuple's other attribute values, then column values
// by global frequency, capped at DomainCap. The returned slice aliases the
// run's pooled buffer and is only valid until the next call.
func (h *HoloSim) domain(t *table.Table, stats *table.Stats, cell table.CellRef, st *holoRun) []table.Value {
	out := st.domain[:0]
	seen := st.domainSeen
	clear(seen)
	defer func() { st.domain = out }()
	add := func(v table.Value) {
		if v.IsNull() {
			return
		}
		// Alloc-free duplicate probe via the pooled key buffer; only the
		// insert of a genuinely new candidate materializes a key string.
		st.keyBuf = v.AppendKey(st.keyBuf[:0])
		if seen[string(st.keyBuf)] {
			return
		}
		seen[string(st.keyBuf)] = true
		out = append(out, v)
	}
	add(t.GetRef(cell))
	row := t.RowView(cell.Row)
	for col, given := range row {
		if col == cell.Col || given.IsNull() {
			continue
		}
		for _, e := range stats.Conditional(col, given, cell.Col).Entries() {
			if len(out) >= h.DomainCap {
				return out
			}
			add(e.Value)
		}
	}
	for _, e := range stats.Column(cell.Col).Entries() {
		if len(out) >= h.DomainCap {
			return out
		}
		add(e.Value)
	}
	return out
}

// score computes the weighted feature sum for assigning cand to cell.
func (h *HoloSim) score(cs []*dc.Constraint, t *table.Table, stats *table.Stats, cell table.CellRef, cand table.Value, st *holoRun) (float64, error) {
	freq := stats.Column(cell.Col).Prob(cand)

	// Average leave-one-out co-occurrence probability with the tuple's
	// other attributes: own-row observations are subtracted so a dirty
	// value cannot vote for itself.
	var cooc float64
	var coocN int
	row := t.RowView(cell.Row)
	for col, given := range row {
		if col == cell.Col || given.IsNull() {
			continue
		}
		cond := stats.Conditional(col, given, cell.Col)
		count := cond.Count(cand)
		total := cond.Total()
		// Remove this row's own observation from both numerator and
		// denominator.
		if !row[cell.Col].IsNull() {
			total--
			if row[cell.Col].SameContent(cand) {
				count--
			}
		}
		if total > 0 {
			cooc += float64(count) / float64(total)
		}
		coocN++
	}
	if coocN > 0 {
		cooc /= float64(coocN)
	}

	// Violations the candidate assignment would leave the tuple in. The
	// probe mutates the work table transiently; the pooled scan index
	// follows both the probe and the restore as single-bucket deltas, so
	// each check stays O(bucket) instead of O(rows).
	old := t.GetRef(cell)
	t.SetRef(cell, cand)
	viol := 0
	for _, c := range cs {
		bad, err := c.ViolatesRowCached(t, cell.Row, st.live.Index())
		if err != nil {
			t.SetRef(cell, old)
			return 0, err
		}
		if bad {
			viol++
		}
	}
	t.SetRef(cell, old)

	return h.WFreq*freq + h.WCooc*cooc + h.WViol*float64(viol), nil
}
