package repair

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/table"
)

// assertTablesIdentical compares cell-for-cell with exact (kind-sensitive)
// equality — bit-identity, not just SameContent.
func assertTablesIdentical(t *testing.T, label string, got, want *table.Table) {
	t.Helper()
	if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for i := 0; i < want.NumRows(); i++ {
		for j := 0; j < want.NumCols(); j++ {
			if got.Get(i, j) != want.Get(i, j) {
				t.Fatalf("%s: cell (%d,%d): %v vs %v", label, i, j, got.Get(i, j), want.Get(i, j))
			}
		}
	}
}

// TestParallelRepairGoldenEquivalence is the PartitionedRepairer contract:
// for every black box, fixture and worker count, RepairIntoParallel
// produces exactly the table the serial RepairInto (itself golden-tested
// against Repair) produces — the serial path stays the cross-validation
// reference.
func TestParallelRepairGoldenEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, fx := range scratchFixtures(t) {
		for _, alg := range scratchAlgorithms(fx.dcs) {
			pr, ok := alg.(PartitionedRepairer)
			if !ok {
				t.Fatalf("%s does not implement PartitionedRepairer", alg.Name())
			}
			want, err := pr.RepairInto(ctx, fx.dcs, fx.dirty, nil)
			if err != nil {
				t.Fatalf("%s/%s: serial: %v", fx.name, alg.Name(), err)
			}
			for _, workers := range []int{1, 2, 8} {
				pool := exec.NewPool(workers)
				// Run twice per pool: the second run reuses pooled run
				// state warmed by a parallel pass.
				for round := 0; round < 2; round++ {
					got, err := pr.RepairIntoParallel(ctx, fx.dcs, fx.dirty, nil, pool)
					if err != nil {
						t.Fatalf("%s/%s/w=%d: parallel: %v", fx.name, alg.Name(), workers, err)
					}
					assertTablesIdentical(t,
						fmt.Sprintf("%s/%s/workers=%d/round=%d", fx.name, alg.Name(), workers, round),
						got, want)
				}
				// A nil pool must be exactly the serial path.
				got, err := pr.RepairIntoParallel(ctx, fx.dcs, fx.dirty, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				assertTablesIdentical(t, fx.name+"/"+alg.Name()+"/nil-pool", got, want)
			}
		}
	}
}

// TestParallelChaseLargePartition drives FDChase across the materialized
// live-set partition with enough violating groups to engage the
// group-parallel compute path, and pins the output to the serial chase.
func TestParallelChaseLargePartition(t *testing.T) {
	ctx := context.Background()
	clean := data.GenerateSoccer(data.SoccerConfig{Leagues: 24, TeamsPerLeague: 12, Seed: 5})
	dirty, _, err := data.Inject(clean, data.InjectSpec{
		Rate: 0.15, Columns: []string{"Country"}, Kinds: []data.ErrorKind{data.ErrorTypo}, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := []*dc.Constraint{dc.MustParse("C1: !(t1.League = t2.League & t1.Country != t2.Country)")}
	chase := NewFDChase()
	want, err := chase.RepairInto(ctx, cs, dirty, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := chase.RepairIntoParallel(ctx, cs, dirty, nil, exec.NewPool(workers))
		if err != nil {
			t.Fatal(err)
		}
		assertTablesIdentical(t, fmt.Sprintf("fdchase-large/workers=%d", workers), got, want)
	}
	// Sanity: the chase actually repaired something, or this test proves
	// nothing.
	if dirty.Equal(want) {
		t.Fatal("fixture has no repairs; parallel equivalence is vacuous")
	}
}

// TestCellRepairedWithPoolMatchesSerial: the binary view through a
// multi-worker pool must agree with the serial CellRepaired for every
// black box, across masked coalition variants.
func TestCellRepairedWithPoolMatchesSerial(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	cell := ll.CellOfInterest
	pool := exec.NewPool(4)
	for _, alg := range All(1) {
		clean, err := alg.Repair(ctx, ll.DCs, ll.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		target := clean.GetRef(cell)
		masked := ll.Dirty.Clone()
		for n := 0; n < 12; n++ {
			ref := table.CellRef{Row: n % masked.NumRows(), Col: n % masked.NumCols()}
			if ref != cell {
				masked.SetRef(ref, table.Null())
			}
			want, err := CellRepaired(ctx, alg, ll.DCs, masked, cell, target)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CellRepairedWith(ctx, alg, ll.DCs, masked, cell, target, pool)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: step %d: pooled %v vs serial %v", alg.Name(), n, got, want)
			}
		}
	}
}
