package repair

import (
	"context"
	"errors"
	"testing"

	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/table"
)

func TestGreedyRepairsLaLiga(t *testing.T) {
	ll := data.NewLaLiga()
	clean, err := NewGreedy().Repair(context.Background(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := dc.Consistent(ll.DCs, clean)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		vs, _ := dc.AllViolations(ll.DCs, clean)
		t.Fatalf("greedy left violations: %v\n%s", vs, clean)
	}
	if got := clean.GetRef(ll.CellOfInterest); !got.Equal(table.String("Spain")) {
		t.Errorf("t5[Country] = %v, want Spain", got)
	}
}

func TestGreedyCleanInputIsFixpoint(t *testing.T) {
	ll := data.NewLaLiga()
	out, err := NewGreedy().Repair(context.Background(), ll.DCs, ll.Clean)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(ll.Clean) {
		t.Fatal("consistent input must pass through unchanged")
	}
}

func TestGreedyTerminatesWhenStuck(t *testing.T) {
	// Two rows contradict on B with no third value available that reduces
	// violations to zero for both sides at once; greedy must terminate.
	tbl := table.MustFromStrings([]string{"A", "B"}, [][]string{{"x", "1"}, {"x", "2"}})
	cs := []*dc.Constraint{dc.MustParse("CX: !(t1.A = t2.A & t1.B != t2.B)")}
	out, err := NewGreedy().Repair(context.Background(), cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := dc.Consistent(cs, out)
	if !ok {
		t.Error("greedy should resolve the simple FD conflict")
	}
}

func TestGreedyMaxStepsBounds(t *testing.T) {
	ll := data.NewLaLiga()
	g := &Greedy{MaxSteps: 1}
	if _, err := g.Repair(context.Background(), ll.DCs, ll.Dirty); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyContextCancel(t *testing.T) {
	ll := data.NewLaLiga()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewGreedy().Repair(ctx, ll.DCs, ll.Dirty); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestFDChaseRepairsFDViolations(t *testing.T) {
	ll := data.NewLaLiga()
	out, err := NewFDChase().Repair(context.Background(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	// C1 (Team→City), C2 (City→Country), C3 (League→Country) are
	// FD-shaped; C4 is not and is ignored. The chase must fix the cell of
	// interest via majority voting in the La Liga group.
	if got := out.GetRef(ll.CellOfInterest); !got.Equal(table.String("Spain")) {
		t.Errorf("t5[Country] = %v, want Spain", got)
	}
	if got := out.GetByName(4, "City"); !got.Equal(table.String("Madrid")) {
		t.Errorf("t5[City] = %v, want Madrid", got)
	}
}

func TestFDChaseIgnoresNonFD(t *testing.T) {
	tbl := table.MustFromStrings([]string{"A", "B"}, [][]string{{"x", "1"}, {"y", "1"}})
	// Genuinely non-FD-shaped constraints (ordering op, too many
	// predicates): chase must be a no-op even though the table "violates"
	// them.
	cs, err := dc.ParseSet(`
N1: !(t1.A < t2.A & t1.B = t2.B)
N2: !(t1.A != t2.A & t1.B = t2.B & t1.B != 99)
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewFDChase().Repair(context.Background(), cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tbl) {
		t.Fatal("non-FD constraints must be ignored")
	}
}

func TestFDChaseRecognizesReversedFD(t *testing.T) {
	// ¬(A ≠ ∧ B =) is the FD B → A up to predicate order; the chase must
	// handle it.
	tbl := table.MustFromStrings([]string{"A", "B"}, [][]string{{"x", "1"}, {"y", "1"}, {"x", "1"}})
	cs := []*dc.Constraint{dc.MustParse("R1: !(t1.A != t2.A & t1.B = t2.B)")}
	out, err := NewFDChase().Repair(context.Background(), cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Get(1, 0).Equal(table.String("x")) {
		t.Fatalf("majority vote should force A=x:\n%s", out)
	}
}

func TestAsFD(t *testing.T) {
	schema := table.MustSchema(table.Column{Name: "A"}, table.Column{Name: "B"})
	cases := []struct {
		text string
		ok   bool
	}{
		{"!(t1.A = t2.A & t1.B != t2.B)", true},
		{"!(t1.B != t2.B & t1.A = t2.A)", true}, // predicate order free
		{"!(t1.A = t2.A)", false},
		{"!(t1.A = t2.A & t1.B < t2.B)", false},
		{"!(t1.A = t2.A & t1.B != t2.B & t1.A != t2.A)", false},
		{"!(t1.A = 'x' & t1.B != t2.B)", false},
	}
	for _, tc := range cases {
		d, ok := asFD(dc.MustParse(tc.text), schema)
		if ok != tc.ok {
			t.Errorf("asFD(%q) ok = %v, want %v", tc.text, ok, tc.ok)
		}
		if ok && (d.lhs != 0 || d.rhs != 1) {
			t.Errorf("asFD(%q) = %+v", tc.text, d)
		}
	}
}

func TestFDChaseCascades(t *testing.T) {
	// A→B then B→C: fixing B regroups the B→C chase; needs a second pass.
	tbl := table.MustFromStrings([]string{"A", "B", "C"}, [][]string{
		{"k", "b1", "c1"},
		{"k", "b1", "c1"},
		{"k", "b2", "c2"}, // B out of line; once fixed to b1, C must follow to c1
	})
	cs, err := dc.ParseSet(`
F1: !(t1.A = t2.A & t1.B != t2.B)
F2: !(t1.B = t2.B & t1.C != t2.C)
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewFDChase().Repair(context.Background(), cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Get(2, 1).Equal(table.String("b1")) || !out.Get(2, 2).Equal(table.String("c1")) {
		t.Fatalf("cascade failed:\n%s", out)
	}
	ok, _ := dc.Consistent(cs, out)
	if !ok {
		t.Error("chase must reach consistency")
	}
}

func TestFDChaseNullLHSSkipped(t *testing.T) {
	tbl := table.MustFromStrings([]string{"A", "B"}, [][]string{{"", "1"}, {"", "2"}})
	cs := []*dc.Constraint{dc.MustParse("F1: !(t1.A = t2.A & t1.B != t2.B)")}
	out, err := NewFDChase().Repair(context.Background(), cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tbl) {
		t.Fatal("null join keys must not group")
	}
}

func TestFDChaseContextCancel(t *testing.T) {
	ll := data.NewLaLiga()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewFDChase().Repair(ctx, ll.DCs, ll.Dirty); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestAllReturnsFourAlgorithms(t *testing.T) {
	algs := All(1)
	if len(algs) != 4 {
		t.Fatalf("All = %d algorithms", len(algs))
	}
	names := map[string]bool{}
	for _, a := range algs {
		if a.Name() == "" {
			t.Error("empty name")
		}
		if names[a.Name()] {
			t.Errorf("duplicate name %s", a.Name())
		}
		names[a.Name()] = true
	}
}

func TestAllAlgorithmsPreserveShapeAndInput(t *testing.T) {
	ll := data.NewLaLiga()
	for _, alg := range All(3) {
		snapshot := ll.Dirty.Clone()
		out, err := alg.Repair(context.Background(), ll.DCs, ll.Dirty)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if out.NumRows() != ll.Dirty.NumRows() || out.NumCols() != ll.Dirty.NumCols() {
			t.Errorf("%s changed the table shape", alg.Name())
		}
		if !ll.Dirty.Equal(snapshot) {
			t.Errorf("%s mutated its input", alg.Name())
		}
	}
}
