package repair

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/dc/plan"
	"repro/internal/exec"
	"repro/internal/table"
)

// TestPlannedRepairGoldenEquivalence is the PlannedRepairer contract: for
// every black box, fixture and worker count, RepairIntoPlanned behind a
// compiled constraint-set plan produces exactly the table the unplanned
// serial RepairInto produces. Rounds alternate planned and unplanned runs
// on the same pooled run state, so a stale plan surviving the pool would
// be caught.
func TestPlannedRepairGoldenEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, fx := range scratchFixtures(t) {
		p := plan.Compile(fx.dirty.Schema(), fx.dcs)
		for _, alg := range scratchAlgorithms(fx.dcs) {
			pl, ok := alg.(PlannedRepairer)
			if !ok {
				t.Fatalf("%s does not implement PlannedRepairer", alg.Name())
			}
			want, err := pl.RepairInto(ctx, fx.dcs, fx.dirty, nil)
			if err != nil {
				t.Fatalf("%s/%s: serial: %v", fx.name, alg.Name(), err)
			}
			for _, workers := range []int{1, 2, 8} {
				pool := exec.NewPool(workers)
				for round := 0; round < 2; round++ {
					got, err := pl.RepairIntoPlanned(ctx, fx.dcs, fx.dirty, nil, pool, p)
					if err != nil {
						t.Fatalf("%s/%s/w=%d: planned: %v", fx.name, alg.Name(), workers, err)
					}
					assertTablesIdentical(t,
						fmt.Sprintf("%s/%s/workers=%d/round=%d/planned", fx.name, alg.Name(), workers, round),
						got, want)
					// Interleave an unplanned run on the warmed pool state:
					// UsePlan(nil) must fully revert.
					got, err = pl.RepairIntoParallel(ctx, fx.dcs, fx.dirty, nil, pool)
					if err != nil {
						t.Fatal(err)
					}
					assertTablesIdentical(t,
						fmt.Sprintf("%s/%s/workers=%d/round=%d/unplanned", fx.name, alg.Name(), workers, round),
						got, want)
				}
			}
			// A nil plan must be exactly RepairIntoParallel's path.
			got, err := pl.RepairIntoPlanned(ctx, fx.dcs, fx.dirty, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertTablesIdentical(t, fx.name+"/"+alg.Name()+"/nil-plan", got, want)
		}
	}
}

// TestCellRepairedPlannedMatchesSerial: the binary view behind a plan must
// agree with the serial CellRepaired for every black box, across masked
// coalition variants — masking changes the table but not the schema, so
// the session plan stays applicable, exactly as in the Shapley loops.
func TestCellRepairedPlannedMatchesSerial(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	cell := ll.CellOfInterest
	pool := exec.NewPool(4)
	p := plan.Compile(ll.Dirty.Schema(), ll.DCs)
	for _, alg := range All(1) {
		clean, err := alg.Repair(ctx, ll.DCs, ll.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		target := clean.GetRef(cell)
		masked := ll.Dirty.Clone()
		for n := 0; n < 12; n++ {
			ref := table.CellRef{Row: n % masked.NumRows(), Col: n % masked.NumCols()}
			if ref != cell {
				masked.SetRef(ref, table.Null())
			}
			want, err := CellRepaired(ctx, alg, ll.DCs, masked, cell, target)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CellRepairedPlanned(ctx, alg, ll.DCs, masked, cell, target, pool, p)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: step %d: planned %v vs serial %v", alg.Name(), n, got, want)
			}
		}
	}
}

// TestPlannedCoalitionSubsets pins the ConstraintGame shape: the plan is
// compiled for the full DC set, but coalitions hand the black box strict
// subsets — per-constraint entries still resolve and the output stays
// bit-identical to the unplanned subset run.
func TestPlannedCoalitionSubsets(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	p := plan.Compile(ll.Dirty.Schema(), ll.DCs)
	alg := NewAlgorithm1()
	for mask := 0; mask < 1<<len(ll.DCs); mask++ {
		subset := make([]*dc.Constraint, 0, len(ll.DCs))
		for i, c := range ll.DCs {
			if mask&(1<<i) != 0 {
				subset = append(subset, c)
			}
		}
		want, err := alg.RepairInto(ctx, subset, ll.Dirty, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := alg.RepairIntoPlanned(ctx, subset, ll.Dirty, nil, nil, p)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesIdentical(t, fmt.Sprintf("coalition mask %b", mask), got, want)
	}
}
