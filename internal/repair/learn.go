package repair

import (
	"context"
	"fmt"

	"repro/internal/dc"
	"repro/internal/table"
)

// TrainingExample is one supervised cleaning instance: a dirty table and
// its ground-truth clean version (same shape).
type TrainingExample struct {
	Dirty, Clean *table.Table
	DCs          []*dc.Constraint
}

// cellAccuracy scores a repair output against ground truth over the cells
// that were actually dirty: +1 for each dirty cell restored to its clean
// value, -1 for each originally-clean cell the repairer broke.
func cellAccuracy(dirty, clean, output *table.Table) (float64, error) {
	if output.NumRows() != clean.NumRows() || output.NumCols() != clean.NumCols() {
		return 0, fmt.Errorf("repair: output shape mismatch")
	}
	score := 0.0
	for i := 0; i < clean.NumRows(); i++ {
		for j := 0; j < clean.NumCols(); j++ {
			wasDirty := !dirty.Get(i, j).SameContent(clean.Get(i, j))
			correct := output.Get(i, j).SameContent(clean.Get(i, j))
			switch {
			case wasDirty && correct:
				score++
			case !wasDirty && !correct:
				score--
			}
		}
	}
	return score, nil
}

// Train tunes the log-linear weights by deterministic coordinate descent
// over a small grid, maximizing cellAccuracy on the training examples.
// It mirrors (at reproduction scale) HoloClean's weight learning: the real
// system fits its factor-graph weights to observations; here the search
// space is the three feature weights and the keep-current prior.
//
// Train mutates the receiver's weights and returns the best training score.
// It is deterministic: ties keep the earlier candidate.
func (h *HoloSim) Train(ctx context.Context, examples []TrainingExample) (float64, error) {
	if len(examples) == 0 {
		return 0, fmt.Errorf("repair: no training examples")
	}
	evaluate := func() (float64, error) {
		total := 0.0
		for _, ex := range examples {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			out, err := h.Repair(ctx, ex.DCs, ex.Dirty)
			if err != nil {
				return 0, err
			}
			s, err := cellAccuracy(ex.Dirty, ex.Clean, out)
			if err != nil {
				return 0, err
			}
			total += s
		}
		return total, nil
	}

	grids := []struct {
		field *float64
		cands []float64
	}{
		{&h.WFreq, []float64{0, 0.5, 1, 2}},
		{&h.WCooc, []float64{1, 2, 3, 5}},
		{&h.WViol, []float64{-1, -2, -4, -8}},
		{&h.WPrior, []float64{0, 0.5, 1, 2}},
	}

	best, err := evaluate()
	if err != nil {
		return 0, err
	}
	// Two rounds of coordinate descent over the grid are enough to reach a
	// fixpoint on these small grids.
	for round := 0; round < 2; round++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for _, g := range grids {
			orig := *g.field
			bestVal := orig
			for _, cand := range g.cands {
				if cand == orig {
					continue
				}
				*g.field = cand
				score, err := evaluate()
				if err != nil {
					return 0, err
				}
				if score > best {
					best = score
					bestVal = cand
				}
			}
			*g.field = bestVal
		}
	}
	return best, nil
}
