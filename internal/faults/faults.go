// Package faults is the deterministic fault-injection harness of the
// robustness layer: named sites in production code report "I am about to
// do X" through package-level hooks, and a test-installed Injector decides
// — from a seeded, reproducible schedule — whether that particular visit
// fires a fault: a cooperative cancellation, an induced panic, a simulated
// slow worker, or a forced edit-log overrun.
//
// The package is a leaf (it imports nothing from this repository), so
// every layer — table, dc, exec, repair, shapley, core, server — can name
// its sites without import cycles. When no injector is active the hooks
// cost one atomic pointer load and a nil check, which keeps the
// zero-steady-state-allocation contract of the evaluation hot path intact
// (TestHitInactiveAllocFree pins this).
//
// # Determinism
//
// A Schedule maps (site, visit-ordinal) pairs to faults. Ordinals are
// per-site and count from 1, assigned under a mutex, so for a serial
// execution (Workers=1) the schedule is fully deterministic: the k-th
// visit to a site always draws the same decision. Under parallel
// execution, which goroutine observes a given ordinal may vary between
// runs, but the *set* of fired faults per site is still exactly the
// schedule's — the chaos suite asserts on degradation behavior (abort
// leaves no partial work, panics quarantine, overruns rebuild), which is
// scheduling-independent by the invariants this harness exists to prove.
package faults

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one injection point in production code. Sites are stable
// identifiers: the chaos suite and the degradation-ladder documentation in
// doc.go refer to them by name.
type Site string

// The named sites of the fault model (see doc.go, "Fault model and
// degradation ladder").
const (
	// SiteWorkerStart fires when a pool helper goroutine begins claiming
	// tasks (exec.Pool.Map) and when a sampling fan-out worker starts a
	// chunk (shapley.fanOut).
	SiteWorkerStart Site = "worker-start"
	// SiteBucketPartition fires per disjoint-bucket pass of a partitioned
	// repair (live-set derivations, FD-chase group fixes).
	SiteBucketPartition Site = "bucket-partition"
	// SiteCacheStore fires on stores into the session's shared caches
	// (coalition values, repair-target diffs) — the writes the
	// no-partial-work-poisoning invariant guards.
	SiteCacheStore Site = "cache-store"
	// SiteEditReplay fires where incremental consumers replay the table
	// edit log (dc.LiveViolationSet.sync); an Overrun fault forces the
	// full-recompute fallback, proving the degraded path serves identical
	// answers.
	SiteEditReplay Site = "edit-replay"
	// SiteSnapshotWrite fires around session snapshot writes to the spool
	// directory (server eviction and shutdown drain).
	SiteSnapshotWrite Site = "snapshot-write"
)

// Kind enumerates what an injected fault does.
type Kind uint8

const (
	// KindNone is the absence of a fault.
	KindNone Kind = iota
	// KindCancel invokes the injector's registered cancel function —
	// cooperative cancellation, exactly as a client disconnect or deadline
	// would deliver it.
	KindCancel
	// KindPanic panics with *InjectedPanic, exercising recovery and
	// quarantine paths.
	KindPanic
	// KindSlow sleeps for the rule's delay, simulating a straggling worker.
	KindSlow
	// KindOverrun makes Overrun() report true at the site, forcing
	// edit-log consumers onto their rebuild fallback.
	KindOverrun
	// KindError makes Err() return an *InjectedError at the site — the
	// shape of a failed I/O operation (full disk on a snapshot write),
	// which callers must degrade through, not crash on.
	KindError
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindCancel:
		return "cancel"
	case KindPanic:
		return "panic"
	case KindSlow:
		return "slow"
	case KindOverrun:
		return "overrun"
	case KindError:
		return "error"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// InjectedPanic is the panic value of a KindPanic fault, so recovery paths
// can distinguish harness-induced panics from real bugs in diagnostics.
type InjectedPanic struct {
	Site    Site
	Ordinal int
}

// Error makes the panic value render usefully when recovered into an error.
func (p *InjectedPanic) Error() string {
	return fmt.Sprintf("faults: injected panic at %s#%d", p.Site, p.Ordinal)
}

// InjectedError is the error value of a KindError fault, so degradation
// paths can distinguish harness-induced failures in diagnostics.
type InjectedError struct {
	Site    Site
	Ordinal int
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected error at %s#%d", e.Site, e.Ordinal)
}

// Rule schedules one fault: the Ordinal-th visit (1-based) to Site fires
// Kind. Delay applies to KindSlow.
type Rule struct {
	Site    Site
	Ordinal int
	Kind    Kind
	Delay   time.Duration
}

// Injector is one activated fault schedule plus its visit counters.
type Injector struct {
	mu     sync.Mutex
	counts map[Site]int
	rules  map[Site]map[int]Rule
	// cancel is invoked by KindCancel faults; set with OnCancel.
	cancel func()
	// fired records every fault that actually fired, in fire order.
	fired []Rule
}

// NewInjector builds an injector from explicit rules.
func NewInjector(rules ...Rule) *Injector {
	inj := &Injector{counts: make(map[Site]int), rules: make(map[Site]map[int]Rule)}
	for _, r := range rules {
		if r.Ordinal < 1 || r.Kind == KindNone {
			continue
		}
		m := inj.rules[r.Site]
		if m == nil {
			m = make(map[int]Rule)
			inj.rules[r.Site] = m
		}
		m[r.Ordinal] = r
	}
	return inj
}

// splitmix64 is the same O(1)-seed generator the sampling fan-out uses;
// the schedule derives every decision from it so equal seeds yield equal
// schedules on every platform.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SeededRules derives a reproducible schedule: for each site, one fault of
// a seed-chosen kind (drawn from kinds) at a seed-chosen ordinal in
// [1, window]. The chaos suite runs a matrix of seeds through this, so the
// fired (site, ordinal, kind) triples vary across seeds but are identical
// for a repeated seed.
func SeededRules(seed int64, window int, sites []Site, kinds []Kind) []Rule {
	if window < 1 {
		window = 1
	}
	s := uint64(seed)
	// Scramble once so small consecutive seeds produce unrelated schedules.
	splitmix64(&s)
	rules := make([]Rule, 0, len(sites))
	for _, site := range sites {
		if len(kinds) == 0 {
			break
		}
		kind := kinds[splitmix64(&s)%uint64(len(kinds))]
		ord := int(splitmix64(&s)%uint64(window)) + 1
		rules = append(rules, Rule{Site: site, Ordinal: ord, Kind: kind, Delay: time.Millisecond})
	}
	return rules
}

// OnCancel registers the function KindCancel faults invoke — typically the
// CancelFunc of the context driving the run under test.
func (inj *Injector) OnCancel(cancel func()) *Injector {
	inj.mu.Lock()
	inj.cancel = cancel
	inj.mu.Unlock()
	return inj
}

// Fired returns the faults that actually fired so far, in fire order.
func (inj *Injector) Fired() []Rule {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Rule(nil), inj.fired...)
}

// visit assigns the next ordinal for site and returns the rule scheduled
// for it, if any.
func (inj *Injector) visit(site Site) (Rule, int, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.counts[site]++
	ord := inj.counts[site]
	r, ok := inj.rules[site][ord]
	if ok {
		inj.fired = append(inj.fired, r)
	}
	return r, ord, ok
}

// active is the installed injector; nil means every hook is a no-op.
var active atomic.Pointer[Injector]

// Activate installs the injector and returns a deactivation function.
// Only one injector is active at a time (tests serialize on this; the
// chaos suite never runs two schedules concurrently).
func Activate(inj *Injector) (deactivate func()) {
	active.Store(inj)
	return func() { active.CompareAndSwap(inj, nil) }
}

// Hit reports a visit to a site and fires whatever the active schedule
// planned for it: KindCancel invokes the registered cancel function (the
// production code then observes ctx.Err() at its next checkpoint),
// KindPanic panics with *InjectedPanic, KindSlow sleeps. KindOverrun does
// nothing here — overrun faults are consumed through Overrun. Inactive
// hooks cost one atomic load.
func Hit(site Site) {
	inj := active.Load()
	if inj == nil {
		return
	}
	r, ord, ok := inj.visit(site)
	if !ok {
		return
	}
	switch r.Kind {
	case KindCancel:
		inj.mu.Lock()
		cancel := inj.cancel
		inj.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	case KindPanic:
		panic(&InjectedPanic{Site: site, Ordinal: ord})
	case KindSlow:
		time.Sleep(r.Delay)
	}
}

// Err reports a visit to a fallible-operation site and returns the
// scheduled *InjectedError, if any. Non-error faults scheduled at the site
// fire exactly as in Hit, with a nil return.
func Err(site Site) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	r, ord, ok := inj.visit(site)
	if !ok {
		return nil
	}
	switch r.Kind {
	case KindError:
		return &InjectedError{Site: site, Ordinal: ord}
	case KindCancel:
		inj.mu.Lock()
		cancel := inj.cancel
		inj.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	case KindPanic:
		panic(&InjectedPanic{Site: site, Ordinal: ord})
	case KindSlow:
		time.Sleep(r.Delay)
	}
	return nil
}

// Overrun reports a visit to a site that consumes the edit log and returns
// true when the schedule forces the overrun fallback there. Non-overrun
// faults scheduled at the site fire exactly as in Hit.
func Overrun(site Site) bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	r, ord, ok := inj.visit(site)
	if !ok {
		return false
	}
	switch r.Kind {
	case KindOverrun:
		return true
	case KindCancel:
		inj.mu.Lock()
		cancel := inj.cancel
		inj.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	case KindPanic:
		panic(&InjectedPanic{Site: site, Ordinal: ord})
	case KindSlow:
		time.Sleep(r.Delay)
	}
	return false
}
