package faults

import (
	"testing"
	"time"
)

func TestInactiveHooksAreNoOps(t *testing.T) {
	Hit(SiteWorkerStart) // must not panic
	if Overrun(SiteEditReplay) {
		t.Fatal("inactive Overrun reported true")
	}
}

func TestHitInactiveAllocFree(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		Hit(SiteCacheStore)
	})
	if allocs != 0 {
		t.Fatalf("inactive Hit allocates %v/op, want 0", allocs)
	}
}

func TestOrdinalScheduling(t *testing.T) {
	var canceled int
	inj := NewInjector(
		Rule{Site: SiteCacheStore, Ordinal: 2, Kind: KindCancel},
	).OnCancel(func() { canceled++ })
	defer Activate(inj)()

	Hit(SiteCacheStore)
	if canceled != 0 {
		t.Fatal("fired on ordinal 1, scheduled for 2")
	}
	Hit(SiteCacheStore)
	if canceled != 1 {
		t.Fatal("did not fire on ordinal 2")
	}
	Hit(SiteCacheStore)
	if canceled != 1 {
		t.Fatal("fired more than once")
	}
	fired := inj.Fired()
	if len(fired) != 1 || fired[0].Site != SiteCacheStore || fired[0].Ordinal != 2 {
		t.Fatalf("fired log = %+v", fired)
	}
}

func TestInjectedPanicCarriesSite(t *testing.T) {
	inj := NewInjector(Rule{Site: SiteBucketPartition, Ordinal: 1, Kind: KindPanic})
	defer Activate(inj)()
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v, want *InjectedPanic", r)
		}
		if ip.Site != SiteBucketPartition || ip.Ordinal != 1 {
			t.Fatalf("panic = %+v", ip)
		}
		if ip.Error() == "" {
			t.Fatal("empty Error()")
		}
	}()
	Hit(SiteBucketPartition)
	t.Fatal("unreached")
}

func TestOverrunFault(t *testing.T) {
	inj := NewInjector(Rule{Site: SiteEditReplay, Ordinal: 1, Kind: KindOverrun})
	defer Activate(inj)()
	if !Overrun(SiteEditReplay) {
		t.Fatal("overrun fault did not fire")
	}
	if Overrun(SiteEditReplay) {
		t.Fatal("overrun fired past its ordinal")
	}
}

func TestSlowFault(t *testing.T) {
	inj := NewInjector(Rule{Site: SiteWorkerStart, Ordinal: 1, Kind: KindSlow, Delay: 10 * time.Millisecond})
	defer Activate(inj)()
	start := time.Now()
	Hit(SiteWorkerStart)
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("slow fault slept %v, want >= 10ms", d)
	}
}

func TestSeededRulesDeterministic(t *testing.T) {
	sites := []Site{SiteWorkerStart, SiteCacheStore, SiteEditReplay}
	kinds := []Kind{KindCancel, KindPanic, KindSlow, KindOverrun}
	a := SeededRules(42, 8, sites, kinds)
	b := SeededRules(42, 8, sites, kinds)
	if len(a) != len(sites) {
		t.Fatalf("got %d rules, want %d", len(a), len(sites))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 not reproducible: %+v vs %+v", a[i], b[i])
		}
		if a[i].Ordinal < 1 || a[i].Ordinal > 8 {
			t.Fatalf("ordinal %d outside window", a[i].Ordinal)
		}
	}
	c := SeededRules(43, 8, sites, kinds)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules (scrambler broken?)")
	}
}

func TestActivateDeactivate(t *testing.T) {
	fired := 0
	inj := NewInjector(Rule{Site: SiteWorkerStart, Ordinal: 1, Kind: KindCancel}).
		OnCancel(func() { fired++ })
	off := Activate(inj)
	off()
	Hit(SiteWorkerStart)
	if fired != 0 {
		t.Fatal("deactivated injector fired")
	}
}
